package packet

import "routeless/internal/digest"

// DigestTo folds the key into h. Shared by every layer that keys
// per-flow state on FlowKey, so all digests spell the key identically.
func (k FlowKey) DigestTo(h *digest.Hash) {
	h.Int64(int64(k.Origin))
	h.Byte(byte(k.Kind))
	h.Uint64(uint64(k.Seq))
}

// DigestState folds the cache's behavioral state into h: capacity,
// population, and every remembered key in insertion order. The order
// slice is the deterministic iteration surface — hashing the map would
// require a sort, and the FIFO order itself is state (it decides which
// key the next insert evicts).
func (c *DedupCache) DigestState(h *digest.Hash) {
	if c == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	h.Int(c.cap)
	h.Int(len(c.order))
	for _, k := range c.order {
		k.DigestTo(h)
	}
}
