package sim

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(3.0, func() { got = append(got, 3) })
	k.Schedule(1.0, func() { got = append(got, 1) })
	k.Schedule(2.0, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if k.Now() != 3.0 {
		t.Fatalf("clock %v, want 3.0", k.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(1.0, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break violated at %d: got %d", i, got[i])
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(1.0, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending")
	}
	k.Cancel(e)
	if e.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	k.Cancel(e) // double-cancel is a no-op
	k.Cancel(nil)
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := NewKernel(1)
	var got []int
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, k.Schedule(Time(i), func() { got = append(got, i) }))
	}
	k.Cancel(evs[4])
	k.Cancel(evs[7])
	k.Run()
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8", len(got))
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	k.Schedule(1.0, func() {
		got = append(got, k.Now())
		k.Schedule(0.5, func() { got = append(got, k.Now()) })
	})
	k.Run()
	if len(got) != 2 || got[0] != 1.0 || got[1] != 1.5 {
		t.Fatalf("got %v, want [1 1.5]", got)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var count int
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() { count++ })
	}
	k.RunUntil(5.0)
	if count != 5 {
		t.Fatalf("count %d, want 5", count)
	}
	if k.Now() != 5.0 {
		t.Fatalf("now %v, want 5", k.Now())
	}
	k.RunUntil(20.0)
	if count != 10 {
		t.Fatalf("count %d, want 10", count)
	}
	if k.Now() != 20.0 {
		t.Fatalf("now %v, want 20", k.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewKernel(1).Schedule(-1, func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(5, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for At before now")
		}
	}()
	k.At(1, func() {})
}

func TestHorizon(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() { count++ })
	}
	k.SetHorizon(3)
	k.Run()
	if count != 3 {
		t.Fatalf("count %d, want 3", count)
	}
	if k.Now() != 3 {
		t.Fatalf("now %v, want 3 (clock advances to horizon)", k.Now())
	}
}

func TestEventRecycling(t *testing.T) {
	k := NewKernel(1)
	// Run enough events to cycle the free list several times and make
	// sure recycled events still fire in order.
	var got []Time
	var schedule func()
	n := 0
	schedule = func() {
		got = append(got, k.Now())
		if n < 5000 {
			n++
			k.Schedule(0.001, schedule)
		}
	}
	k.Schedule(0, schedule)
	k.Run()
	if len(got) != 5001 {
		t.Fatalf("got %d firings, want 5001", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and equal times fire in insertion order.
func TestQuickHeapOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(42)
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i := i
			at := Time(d) / 16 // force many ties
			k.Schedule(at, func() { fired = append(fired, firing{k.Now(), i}) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		ok := slices.IsSortedFunc(fired, func(a, b firing) int {
			if a.at != b.at {
				if a.at < b.at {
					return -1
				}
				return 1
			}
			return a.seq - b.seq
		})
		// IsSortedFunc with strict less: verify manually instead.
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return ok || true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset never disturbs the rest.
func TestQuickCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		k := NewKernel(7)
		r := rand.New(rand.NewSource(seed))
		total := int(n%64) + 1
		fired := make([]bool, total)
		evs := make([]*Event, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = k.Schedule(Time(r.Float64()*10), func() { fired[i] = true })
		}
		cancelled := make([]bool, total)
		for i := 0; i < total; i++ {
			if r.Intn(2) == 0 {
				k.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		k.Run()
		for i := 0; i < total; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		k := NewKernel(99)
		var out []float64
		var step func()
		n := 0
		step = func() {
			out = append(out, k.Rand().Float64())
			if n < 100 {
				n++
				k.Schedule(Time(k.Rand().Float64()), step)
			}
		}
		k.Schedule(0, step)
		k.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0.5)
	if tm.Millis() != 500 {
		t.Fatalf("Millis = %v", tm.Millis())
	}
	if tm.Micros() != 500000 {
		t.Fatalf("Micros = %v", tm.Micros())
	}
	if tm.Seconds() != 0.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
}

// TestHeapStress drives the 4-ary heap through a large randomized
// schedule/cancel workload and checks the fired sequence against an
// independently sorted reference.
func TestHeapStress(t *testing.T) {
	k := NewKernel(1)
	r := rand.New(rand.NewSource(13))
	const n = 20000
	type ref struct {
		at  Time
		seq int
	}
	var want []ref
	var got []ref
	evs := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		i := i
		at := Time(r.Intn(500)) / 8 // many ties, deep heap
		e := k.At(at, func() { got = append(got, ref{k.Now(), i}) })
		evs = append(evs, e)
		want = append(want, ref{at, i})
	}
	// Cancel a third of them, scattered.
	cancelled := make(map[int]bool)
	for i := 0; i < n; i += 3 {
		k.Cancel(evs[i])
		cancelled[i] = true
	}
	want = slices.DeleteFunc(want, func(x ref) bool { return cancelled[x.seq] })
	slices.SortStableFunc(want, func(a, b ref) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		return 0 // stable sort keeps insertion (seq) order for ties
	})
	k.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestFreeListGrowsWithQueueDepth verifies the adaptive recycling
// strategy: after a deep queue drains, re-scheduling at the same depth
// should not allocate new Event structs.
func TestFreeListGrowsWithQueueDepth(t *testing.T) {
	k := NewKernel(1)
	const depth = 5000
	for i := 0; i < depth; i++ {
		k.Schedule(Time(i), func() {})
	}
	k.Run()
	if len(k.pool.free) < 1024 {
		t.Fatalf("free list holds %d events after draining %d; recycling is not keeping up", len(k.pool.free), depth)
	}
	allocs := testing.AllocsPerRun(10, func() {
		e := k.Schedule(1, func() {})
		k.Cancel(e)
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel cycle allocates %.1f objects; free list not reused", allocs)
	}
}

// TestEventPoolSurvivesKernel verifies the sweep-worker reuse contract:
// a pool filled by one kernel warms the next, so a second same-shaped
// run schedules out of recycled Event structs.
func TestEventPoolSurvivesKernel(t *testing.T) {
	pool := NewEventPool()
	k1 := NewKernelPooled(1, pool)
	const depth = 2000
	for i := 0; i < depth; i++ {
		k1.Schedule(Time(i), func() {})
	}
	k1.Run()
	warm := len(pool.free)
	if warm == 0 {
		t.Fatal("pool is empty after the first kernel drained")
	}
	k2 := NewKernelPooled(2, pool)
	allocs := testing.AllocsPerRun(10, func() {
		e := k2.Schedule(1, func() {})
		k2.Cancel(e)
	})
	if allocs != 0 {
		t.Fatalf("second kernel allocates %.1f objects per event with a warm pool", allocs)
	}
}
