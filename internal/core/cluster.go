package core

import (
	"math/rand"
	"slices"

	"routeless/internal/metrics"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// Cluster is an abstract broadcast neighborhood implementing Medium:
// a directed reachability graph with per-message loss, a fixed
// transmission latency, and a collision window — two messages arriving
// at the same receiver within the window destroy each other, which is
// exactly the failure mode §2 warns about ("multiple nodes may choose
// almost identical backoff delays, leading to a collision").
//
// Cluster exists so the election engine can be studied and property-
// tested in isolation; the full PHY/MAC stack provides the production
// medium through internal/flood and internal/routing.
type Cluster struct {
	kernel *sim.Kernel
	adj    [][]bool
	delay  sim.Time
	window sim.Time
	loss   float64
	rng    *rand.Rand

	electors map[packet.NodeID]*Elector
	arbiters map[packet.NodeID]*Arbiter

	inflight map[packet.NodeID][]*delivery

	stats clusterCounters
}

// ClusterStats is a read-only view of the medium counters.
type ClusterStats struct {
	Broadcasts uint64
	Delivered  uint64
	Lost       uint64 // random loss
	Collided   uint64 // destroyed by the collision window
}

type clusterCounters struct {
	broadcasts metrics.Counter
	delivered  metrics.Counter
	lost       metrics.Counter
	collided   metrics.Counter
}

type delivery struct {
	at       sim.Time
	from     packet.NodeID
	msg      Message
	collided bool
}

// NewCluster builds a medium over n isolated nodes. delay is the
// message latency, window the collision window (two arrivals at one
// receiver closer than window destroy each other), loss the independent
// per-link drop probability.
func NewCluster(k *sim.Kernel, n int, delay, window sim.Time, loss float64, r *rand.Rand) *Cluster {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Cluster{
		kernel:   k,
		adj:      adj,
		delay:    delay,
		window:   window,
		loss:     loss,
		rng:      r,
		electors: make(map[packet.NodeID]*Elector),
		arbiters: make(map[packet.NodeID]*Arbiter),
		inflight: make(map[packet.NodeID][]*delivery),
	}
}

// Connect adds a bidirectional link between a and b.
func (c *Cluster) Connect(a, b int) {
	c.adj[a][b] = true
	c.adj[b][a] = true
}

// ConnectOneWay adds a directed link a→b (the unidirectional-link case
// §4 mentions).
func (c *Cluster) ConnectOneWay(a, b int) { c.adj[a][b] = true }

// ConnectAll makes the cluster a clique — every node hears every other,
// the paper's canonical "spatially close neighborhood".
func (c *Cluster) ConnectAll() {
	for i := range c.adj {
		for j := range c.adj {
			if i != j {
				c.adj[i][j] = true
			}
		}
	}
}

// AttachElector registers an elector to receive deliveries at its id.
func (c *Cluster) AttachElector(e *Elector) { c.electors[e.ID()] = e }

// AttachArbiter registers an arbiter to receive deliveries at its id.
func (c *Cluster) AttachArbiter(a *Arbiter) { c.arbiters[a.ID()] = a }

// Stats returns medium counters.
func (c *Cluster) Stats() ClusterStats {
	return ClusterStats{
		Broadcasts: c.stats.broadcasts.Value(),
		Delivered:  c.stats.delivered.Value(),
		Lost:       c.stats.lost.Value(),
		Collided:   c.stats.collided.Value(),
	}
}

// RegisterMetrics implements metrics.Source.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe("cluster.broadcasts", &c.stats.broadcasts)
	reg.Observe("cluster.delivered", &c.stats.delivered)
	reg.Observe("cluster.lost", &c.stats.lost)
	reg.Observe("cluster.collided", &c.stats.collided)
}

// Broadcast implements Medium.
func (c *Cluster) Broadcast(from packet.NodeID, msg Message) {
	c.stats.broadcasts.Inc()
	at := c.kernel.Now() + c.delay
	for to, linked := range c.adj[from] {
		if !linked {
			continue
		}
		if c.loss > 0 && c.rng.Float64() < c.loss {
			c.stats.lost.Inc()
			continue
		}
		rcv := packet.NodeID(to)
		d := &delivery{at: at, from: from, msg: msg}
		// Any in-flight delivery to the same receiver within the
		// collision window destroys both.
		for _, other := range c.inflight[rcv] {
			if !other.collided || !d.collided {
				dt := other.at - d.at
				if dt < 0 {
					dt = -dt
				}
				if dt < c.window {
					other.collided = true
					d.collided = true
				}
			}
		}
		c.inflight[rcv] = append(c.inflight[rcv], d)
		c.kernel.At(at, func() { c.deliver(rcv, d) })
	}
}

func (c *Cluster) deliver(to packet.NodeID, d *delivery) {
	// Drop d from the in-flight list.
	list := c.inflight[to]
	for i, x := range list {
		if x == d {
			list[i] = list[len(list)-1]
			c.inflight[to] = list[:len(list)-1]
			break
		}
	}
	if d.collided {
		c.stats.collided.Inc()
		return
	}
	c.stats.delivered.Inc()
	if e, ok := c.electors[to]; ok {
		e.Handle(d.from, d.msg)
	}
	if a, ok := c.arbiters[to]; ok {
		a.Handle(d.from, d.msg)
	}
}

// TriggerAll delivers a synchronization observation directly to every
// attached elector with the supplied per-node contexts — modeling an
// implicit synchronization point such as a commonly observed event
// rather than an arbiter's SYNC packet. Contexts are looked up by node
// id; electors without a context entry observe a zero Context.
func (c *Cluster) TriggerAll(round uint32, ctxs map[packet.NodeID]Context) {
	ids := make([]int, 0, len(c.electors))
	for id := range c.electors {
		ids = append(ids, int(id))
	}
	slices.Sort(ids) // deterministic draw order from the shared stream
	for _, id := range ids {
		e := c.electors[packet.NodeID(id)]
		ctx := ctxs[packet.NodeID(id)]
		ctx.Rand = c.rng
		e.ObserveSync(round, ctx)
	}
}
