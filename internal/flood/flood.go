// Package flood implements the paper's flooding family (§3) as
// network-layer protocols over internal/node:
//
//   - Blind flooding: every reception is reforwarded (TTL-bounded) —
//     the strawman "most basic form".
//   - Counter-1 flooding: each node rebroadcasts a packet exactly once
//     (sequence-number dedup) after a uniformly random backoff — the
//     paper's baseline.
//   - SSAF (Signal Strength Aware Flooding): identical to counter-1
//     except the backoff is derived from the received signal strength,
//     so nodes far from the previous hop rebroadcast first. The relay
//     choice is a local leader election with the signal-strength
//     metric; the end of the packet transmission is the implicit
//     synchronization point.
//   - SSAF-C (ablation): SSAF plus cancellation — a pending rebroadcast
//     is dropped when a duplicate is overheard during the backoff,
//     trading delivery redundancy for fewer transmissions.
//
// The variant is fully determined by Config: the backoff policy (a
// core.BackoffPolicy), the Cancel flag, and the Blind flag.
package flood

import (
	"routeless/internal/core"
	"routeless/internal/geo"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// Config selects the flooding variant.
type Config struct {
	// Policy derives the rebroadcast backoff; core.Uniform reproduces
	// counter-1, core.SignalStrength reproduces SSAF.
	Policy core.BackoffPolicy
	// Cancel drops a pending rebroadcast when a duplicate of the same
	// packet is overheard during the backoff (the SSAF-C ablation).
	Cancel bool
	// Blind disables duplicate suppression entirely; TTL is the only
	// brake. For the strawman variant and tests.
	Blind bool
	// TTL bounds forwarding; default 32.
	TTL int
	// DedupCap bounds the sequence-number memory; default 4096.
	DedupCap int
	// Locator, when set, supplies true node positions so policies can
	// use Context.DistanceToSender (location-based flooding). Without
	// it the distance is reported as unavailable (-1).
	Locator func(id packet.NodeID) geo.Point
}

// Counter1Config returns the paper's baseline: dedup flooding with a
// uniformly random backoff over [0, maxBackoff).
func Counter1Config(maxBackoff sim.Time) Config {
	return Config{Policy: core.Uniform{Max: maxBackoff}}
}

// SSAFConfig returns Signal Strength Aware Flooding with the given λ
// and the RSSI span [minDBm, maxDBm] mapped onto [0, λ).
func SSAFConfig(lambda sim.Time, minDBm, maxDBm float64) Config {
	return Config{Policy: core.SignalStrength{
		Lambda: lambda, MinDBm: minDBm, MaxDBm: maxDBm, JitterFrac: 0.1,
	}}
}

// LocationConfig returns location-based flooding — the idealized scheme
// SSAF approximates without position hardware (§3). locator supplies
// true node positions.
func LocationConfig(lambda sim.Time, rangeM float64, locator func(id packet.NodeID) geo.Point) Config {
	return Config{
		Policy:  core.LocationAware{Lambda: lambda, Range: rangeM, JitterFrac: 0.1},
		Locator: locator,
	}
}

// Stats is the plain-uint64 snapshot view of one node's flooding
// counters.
type Stats struct {
	Originated uint64 // packets this node sourced
	Forwards   uint64 // rebroadcasts enqueued to the MAC
	Duplicates uint64 // copies suppressed by dedup
	Cancelled  uint64 // pending rebroadcasts cancelled (Cancel variant)
	Delivered  uint64 // packets consumed as destination
	TTLDrops   uint64 // copies dropped for exhausted TTL
}

// floodCounters is the live counter storage behind Stats.
type floodCounters struct {
	originated metrics.Counter32
	forwards   metrics.Counter32
	duplicates metrics.Counter32
	cancelled  metrics.Counter32
	delivered  metrics.Counter32
	ttlDrops   metrics.Counter32
}

// Flooding is one node's instance of the protocol.
type Flooding struct {
	// cfg is shared across the population (see New); never written
	// after the first New on it.
	cfg   *Config
	n     *node.Node
	seq   uint32
	dedup packet.DedupCache
	// pending maps logical packets to their armed rebroadcasts, used
	// by the Cancel variant: cancellation can strike while the backoff
	// timer runs or while the frame waits in the MAC queue.
	pending map[packet.FlowKey]*pendingForward

	// OnForward, if set, observes every rebroadcast (for tracing).
	OnForward func(pkt *packet.Packet)

	stats floodCounters
}

// pendingForward is one armed rebroadcast.
type pendingForward struct {
	timer  *sim.Timer
	fwd    *packet.Packet
	queued bool
}

// New builds a flooding instance; install it with Network.Install or
// (sharing one Config across the population) InstallAggregated. cfg is
// retained, not copied — every node's instance reads the same Config,
// which is 48 bytes of identical bytes per node otherwise — and New
// fills in zero-valued defaults in place, so callers must not mutate
// it after the first New.
func New(cfg *Config) *Flooding {
	f := &Flooding{}
	Init(f, cfg)
	return f
}

// Init initializes f in place — the arena alternative to New for
// mega-scale populations that lay their Flooding instances out in one
// contiguous slice. Same contract as New: cfg is retained and shared.
func Init(f *Flooding, cfg *Config) {
	if cfg.Policy == nil && !cfg.Blind {
		panic("flood: Config.Policy required")
	}
	if cfg.TTL == 0 {
		cfg.TTL = 32
	}
	if cfg.DedupCap == 0 {
		cfg.DedupCap = 4096
	}
	// pending is lazily allocated by armForward: only the Cancel
	// variant ever reads it, and at mega scale an eager empty map per
	// node is measurable arena weight.
	*f = Flooding{cfg: cfg}
	f.dedup.Init(cfg.DedupCap)
}

// Start implements node.Protocol.
func (f *Flooding) Start(n *node.Node) { f.n = n }

// Stats returns the node's flooding counters.
func (f *Flooding) Stats() Stats {
	return Stats{
		Originated: f.stats.originated.Value(),
		Forwards:   f.stats.forwards.Value(),
		Duplicates: f.stats.duplicates.Value(),
		Cancelled:  f.stats.cancelled.Value(),
		Delivered:  f.stats.delivered.Value(),
		TTLDrops:   f.stats.ttlDrops.Value(),
	}
}

// RegisterMetrics registers the flooding counters; per-node sources sum
// into network-wide flood.* series.
func (f *Flooding) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe32("flood.originated", &f.stats.originated)
	reg.Observe32("flood.forwards", &f.stats.forwards)
	reg.Observe32("flood.duplicates", &f.stats.duplicates)
	reg.Observe32("flood.cancelled", &f.stats.cancelled)
	reg.Observe32("flood.delivered", &f.stats.delivered)
	reg.Observe32("flood.ttl_drops", &f.stats.ttlDrops)
}

// RegisterAggregate registers the network-wide flood.* series as
// aggregate func-counters summing over every instance in floods, in the
// exact order RegisterMetrics registers them per node. The registry
// sums same-name sources at snapshot time, so the aggregate exposes
// bit-identical snapshots to N per-node registrations while costing
// O(1) registry entries instead of O(N) — install with
// Network.InstallAggregated at mega scale.
func RegisterAggregate(reg *metrics.Registry, floods []*Flooding) {
	sum := func(pick func(*floodCounters) *metrics.Counter32) func() uint64 {
		return func() uint64 {
			var s uint64
			for _, f := range floods {
				s += pick(&f.stats).Value()
			}
			return s
		}
	}
	reg.Func("flood.originated", sum(func(s *floodCounters) *metrics.Counter32 { return &s.originated }))
	reg.Func("flood.forwards", sum(func(s *floodCounters) *metrics.Counter32 { return &s.forwards }))
	reg.Func("flood.duplicates", sum(func(s *floodCounters) *metrics.Counter32 { return &s.duplicates }))
	reg.Func("flood.cancelled", sum(func(s *floodCounters) *metrics.Counter32 { return &s.cancelled }))
	reg.Func("flood.delivered", sum(func(s *floodCounters) *metrics.Counter32 { return &s.delivered }))
	reg.Func("flood.ttl_drops", sum(func(s *floodCounters) *metrics.Counter32 { return &s.ttlDrops }))
}

// Send implements node.Protocol: originate a flooded data packet.
func (f *Flooding) Send(target packet.NodeID, size int) {
	f.seq++
	f.stats.originated.Inc()
	pkt := &packet.Packet{
		Kind: packet.KindFlood, To: packet.Broadcast,
		Origin: f.n.ID, Target: target, Seq: f.seq,
		HopCount: 1, TTL: f.cfg.TTL, Size: size,
		CreatedAt: f.n.Kernel.Now(),
	}
	f.dedup.Seen(pkt.Key()) // never forward our own packet back
	f.n.MAC.Enqueue(pkt, 0)
}

// OnDeliver implements node.Protocol.
func (f *Flooding) OnDeliver(pkt *packet.Packet, rssiDBm float64) {
	if pkt.Kind != packet.KindFlood {
		return
	}
	if f.cfg.Blind {
		f.handleBlind(pkt, rssiDBm)
		return
	}
	key := pkt.Key()
	if f.dedup.Seen(key) {
		f.stats.duplicates.Inc()
		if f.cfg.Cancel {
			if pf, ok := f.pending[key]; ok {
				cancelled := false
				if pf.queued {
					cancelled = f.n.MAC.Dequeue(pf.fwd)
				} else {
					pf.timer.Stop()
					cancelled = true
				}
				if cancelled {
					delete(f.pending, key)
					f.stats.cancelled.Inc()
				}
			}
		}
		return
	}
	if pkt.Target == f.n.ID {
		f.stats.delivered.Inc()
		f.n.Deliver(pkt)
		// The destination still participates in the flood: other
		// receivers may sit behind it.
	}
	if pkt.TTL <= 1 {
		f.stats.ttlDrops.Inc()
		return
	}
	f.armForward(pkt, rssiDBm)
}

func (f *Flooding) handleBlind(pkt *packet.Packet, rssiDBm float64) {
	if pkt.Target == f.n.ID {
		f.stats.delivered.Inc()
		f.n.Deliver(pkt)
	}
	if pkt.TTL <= 1 {
		f.stats.ttlDrops.Inc()
		return
	}
	backoff := sim.Time(f.n.Rng.Float64()) * 5e-3
	fwd := f.prepareForward(pkt)
	f.n.Kernel.Schedule(backoff, func() { f.transmit(fwd, float64(backoff)) })
}

// armForward schedules the §2 election step: backoff from the policy,
// then rebroadcast — unless cancelled first.
func (f *Flooding) armForward(pkt *packet.Packet, rssiDBm float64) {
	ctx := core.Context{
		Self:             f.n.ID,
		RSSIdBm:          rssiDBm,
		DistanceToSender: -1,
		Rand:             f.n.Rng,
	}
	if f.cfg.Locator != nil {
		ctx.DistanceToSender = f.cfg.Locator(f.n.ID).Dist(f.cfg.Locator(pkt.From))
	}
	backoff, ok := f.cfg.Policy.Backoff(ctx)
	if !ok {
		return
	}
	key := pkt.Key()
	pf := &pendingForward{fwd: f.prepareForward(pkt)}
	pf.timer = sim.NewTimer(f.n.Kernel, func() {
		pf.queued = true
		if !f.cfg.Cancel {
			delete(f.pending, key)
		}
		f.transmit(pf.fwd, float64(backoff))
	})
	if f.pending == nil {
		f.pending = make(map[packet.FlowKey]*pendingForward)
	}
	f.pending[key] = pf
	pf.timer.Reset(backoff)
}

func (f *Flooding) prepareForward(pkt *packet.Packet) *packet.Packet {
	fwd := pkt.Clone()
	fwd.To = packet.Broadcast
	fwd.HopCount++
	fwd.TTL--
	return fwd
}

func (f *Flooding) transmit(fwd *packet.Packet, priority float64) {
	f.stats.forwards.Inc()
	if f.OnForward != nil {
		f.OnForward(fwd)
	}
	f.n.MAC.Enqueue(fwd, priority)
}

// OnSent implements node.Protocol: once a Cancel-variant frame is on
// the air it can no longer be withdrawn, so its tracking entry is
// released.
func (f *Flooding) OnSent(pkt *packet.Packet) {
	if pkt.Kind != packet.KindFlood || !f.cfg.Cancel {
		return
	}
	if pf, ok := f.pending[pkt.Key()]; ok && pf.fwd == pkt {
		delete(f.pending, pkt.Key())
	}
}

// OnUnicastFailed implements node.Protocol; flooding never unicasts.
func (f *Flooding) OnUnicastFailed(pkt *packet.Packet) {}
