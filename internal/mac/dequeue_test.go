package mac

import (
	"testing"
)

func TestDequeueFromQueue(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	first := bcast(1)
	second := bcast(2)
	macs[0].Enqueue(first, 0)  // promoted to contention immediately
	macs[0].Enqueue(second, 1) // waits in the queue
	if !macs[0].Dequeue(second) {
		t.Fatal("queued frame not dequeued")
	}
	k.Run()
	if len(recs[1].delivered) != 1 || recs[1].delivered[0].Seq != 1 {
		t.Fatalf("receiver saw %d frames", len(recs[1].delivered))
	}
	if macs[0].Stats().Dequeued != 1 {
		t.Fatalf("Dequeued = %d", macs[0].Stats().Dequeued)
	}
}

func TestDequeueCurrentDuringContention(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	first := bcast(1)
	macs[0].Enqueue(first, 0)
	// The frame is the contention head (DIFS/backoff running) but not
	// yet on the air: it must still be recallable.
	if !macs[0].Dequeue(first) {
		t.Fatal("contending frame not dequeued")
	}
	k.Run()
	if len(recs[1].delivered) != 0 {
		t.Fatal("dequeued frame still transmitted")
	}
}

func TestDequeueFailsOnceOnAir(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	first := bcast(1)
	macs[0].Enqueue(first, 0)
	// Run past contention into the transmission itself, then try.
	k.RunUntil(0.002) // DIFS+slots done; 512B frame airs for ~4 ms
	if macs[0].Dequeue(first) {
		t.Fatal("frame on the air should not be recallable")
	}
	k.SetHorizon(1e18)
	k.Run()
	if len(recs[1].delivered) != 1 {
		t.Fatal("frame lost")
	}
}

func TestDequeueUnknownFrame(t *testing.T) {
	_, _, macs, _ := rig(t, pts(0, 0, 100, 0))
	if macs[0].Dequeue(bcast(9)) {
		t.Fatal("dequeue of never-enqueued frame succeeded")
	}
}

func TestDequeueNextFramePromoted(t *testing.T) {
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	first := bcast(1)
	second := bcast(2)
	macs[0].Enqueue(first, 0)
	macs[0].Enqueue(second, 1)
	if !macs[0].Dequeue(first) {
		t.Fatal("head frame not dequeued")
	}
	k.Run()
	// The second frame must be promoted and transmitted.
	if len(recs[1].delivered) != 1 || recs[1].delivered[0].Seq != 2 {
		t.Fatalf("second frame not promoted: %d frames", len(recs[1].delivered))
	}
}

func TestARQDuplicateSuppressed(t *testing.T) {
	// Force ACK loss by turning the receiver's radio off exactly when
	// it would acknowledge — then the sender retries the same UID and
	// the receiver must deliver only once while re-acking.
	k, _, macs, recs := rig(t, pts(0, 0, 100, 0))
	macs[0].Enqueue(unicast(1, 1), 0)
	// Let the data land, then jam the first ACK with a concurrent
	// transmission from node 1's own MAC? Simpler: observe DupRx via a
	// direct double-delivery scenario — retransmit path exercised in
	// TestUnicastToDeadNeighborFails; here check happy path has none.
	k.Run()
	if macs[1].Stats().DupRx != 0 {
		t.Fatalf("spurious duplicate suppression: %d", macs[1].Stats().DupRx)
	}
	if len(recs[1].delivered) != 1 {
		t.Fatalf("delivered %d", len(recs[1].delivered))
	}
}
