// Package parallel runs independent simulations concurrently: each
// simulation is sequential (determinism), but parameter points × seeds
// are embarrassingly parallel. Results come back in input order, so a
// parallel sweep prints identical tables to a serial one.
package parallel

import (
	"runtime"
	"sync"
)

// Map evaluates fn for every index in [0, n) using at most workers
// goroutines (0 means GOMAXPROCS) and returns the results in index
// order. fn must be safe to call concurrently for different indices —
// simulations satisfy this because each builds its own kernel.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// ForEach is Map without results.
func ForEach(workers, n int, fn func(i int)) {
	Map(workers, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
