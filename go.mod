module routeless

go 1.22
