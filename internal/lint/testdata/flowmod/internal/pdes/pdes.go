// Package pdes mirrors the real tile engine's shape: alongside
// internal/parallel and internal/sweep, it is the only internal
// package allowed to own goroutines and sync primitives. The goroutine
// rule's worker-pool exemption matches by path suffix, so this fixture
// pins that a `go` statement and a sync import stay clean here while
// the identical shape in proto.SpawnBad is flagged.
package pdes

import "sync"

// Run fans one barrier window out to n tile workers and waits for all
// of them — the concurrency pattern the exemption exists for.
func Run(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}
