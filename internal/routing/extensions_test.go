package routing

import (
	"testing"

	"routeless/internal/flood"
	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/rng"
	"routeless/internal/sim"
)

// TestRRUnderMobility: slow random-waypoint motion must not break
// Routeless Routing — the gradient refreshes passively from every data
// packet, so routes follow the nodes (the "dynamic topological changes"
// motivation of §4).
func TestRRUnderMobility(t *testing.T) {
	nw := node.New(node.Config{N: 120, Rect: geo.NewRect(1000, 1000), Seed: 21, EnsureConnected: true})
	rrs := make([]*Routeless, 0, 120)
	nw.Install(func(n *node.Node) node.Protocol {
		r := NewRouteless(RoutelessConfig{})
		rrs = append(rrs, r)
		return r
	})
	src, dst := 0, 100
	delivered := 0
	sent := 0
	nw.Nodes[dst].OnAppReceive = func(*packet.Packet) { delivered++ }
	// Intermediate nodes wander slowly (pedestrian speeds); endpoints
	// stay put so the flow itself is well-defined.
	for i, n := range nw.Nodes {
		if i == src || i == dst {
			continue
		}
		w := node.NewWaypoint(nw, n, rng.ForNode(21, rng.StreamTopology, i))
		w.MinSpeed, w.MaxSpeed = 0.5, 2
		w.Start()
	}
	for at := sim.Time(1); at <= 30; at++ {
		at := at
		nw.Kernel.At(at, func() {
			sent++
			rrs[src].Send(packet.NodeID(dst), 64)
		})
	}
	nw.Run(40)
	if float64(delivered)/float64(sent) < 0.8 {
		t.Fatalf("delivery %d/%d under slow mobility", delivered, sent)
	}
}

// TestRRSurvivesUnidirectionalLink: §4 — "The existence of
// unidirectional links may negatively affect the efficiency, but not
// the correctness of the protocol." A low-power node can hear but not
// be heard at range; the protocol must route around it.
func TestRRSurvivesUnidirectionalLink(t *testing.T) {
	// Chain 0-1-2 with a parallel relay 3. Node 1 has its power cut so
	// its transmissions reach nobody (decode range collapses), while it
	// still hears everyone: every link *through node 1* is
	// unidirectional. Traffic must flow via node 3.
	positions := []geo.Point{
		{X: 0, Y: 0}, {X: 200, Y: 40}, {X: 400, Y: 0}, {X: 200, Y: -60},
	}
	nw := node.New(node.Config{Positions: positions, Seed: 22})
	rrs := make([]*Routeless, 0, 4)
	nw.Install(func(n *node.Node) node.Protocol {
		r := NewRouteless(RoutelessConfig{})
		rrs = append(rrs, r)
		return r
	})
	nw.Nodes[1].Radio.SetTxPower(-40) // whisper: heard by nobody at 200 m
	count := 0
	nw.Nodes[2].OnAppReceive = func(*packet.Packet) { count++ }
	rrs[0].Send(2, 64)
	nw.Run(15)
	if count != 1 {
		t.Fatalf("delivered %d, want 1 via the healthy relay", count)
	}
	if rrs[3].Stats().Relays == 0 {
		t.Fatal("healthy relay never carried the packet")
	}
}

// TestSSAFUnderRayleighFading: §3 — under Rayleigh "the signal strength
// may vary dramatically", but "the weakening of the signal as the
// distance increases still holds at large scales", so SSAF keeps
// working (just with noisier relay choices).
func TestSSAFUnderRayleighFading(t *testing.T) {
	nw := node.New(node.Config{
		N: 80, Rect: geo.NewRect(900, 900), Seed: 23, EnsureConnected: true,
		Fader: propagation.Rayleigh{}, FadeMarginDB: 15,
	})
	delivered := 0
	nw.Nodes[60].OnAppReceive = func(*packet.Packet) { delivered++ }
	protos := make([]node.Protocol, 0, 80)
	fcfg := flood.SSAFConfig(10e-3, -55.1, -33.2)
	nw.Install(func(n *node.Node) node.Protocol {
		p := flood.New(&fcfg)
		protos = append(protos, p)
		return p
	})
	for i := 0; i < 10; i++ {
		nw.Kernel.At(sim.Time(1+i), func() { protos[0].Send(60, 64) })
	}
	nw.Run(20)
	if delivered < 7 {
		t.Fatalf("delivered %d/10 floods under Rayleigh fading", delivered)
	}
}
