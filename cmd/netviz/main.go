// Command netviz renders the Figure 2 scenario — Routeless Routing
// steering an A→B flow around heavy C↔D cross-traffic — as ASCII maps:
// '.' nodes, 'o' nodes that relayed A's data, 'x' nodes that relayed
// the cross-traffic, letters for the endpoints.
//
// Usage:
//
//	netviz [-nodes N] [-terrain M] [-seed S] [-duration S] [-width W]
//	       [-cross-interval S]
package main

import (
	"flag"
	"fmt"
	"os"

	"routeless/internal/experiments"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 300, "node count")
		terrain  = flag.Float64("terrain", 1500, "square terrain side, meters")
		seed     = flag.Int64("seed", 3, "simulation seed")
		duration = flag.Float64("duration", 30, "traffic seconds")
		width    = flag.Int("width", 76, "map width in characters")
		crossIv  = flag.Float64("cross-interval", 0, "C<->D packet interval (0 = default)")
		svgOut   = flag.String("svg", "", "also write the congested scenario as SVG to this file")
	)
	flag.Parse()

	res := experiments.RunFig2(experiments.Fig2Config{
		Nodes: *nodes, Terrain: *terrain, Seed: *seed,
		Duration: *duration, CrossInterval: *crossIv,
	})
	fmt.Println(experiments.Fig2Table(res))
	fmt.Println(experiments.Fig2Render(res, *width))
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(experiments.Fig2SVG(res, 800)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "svg:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *svgOut)
	}
}
