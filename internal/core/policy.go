// Package core implements the paper's primary contribution: the local
// leader election operator (§2). A group of nodes that observe a common
// implicit synchronization point each compute a metric-derived backoff
// delay; the node whose timer expires first broadcasts an announcement
// and becomes the local leader, while everyone who hears the
// announcement cancels. An optional arbiter acknowledges the winner and
// re-triggers the round when nobody announces.
//
// The backoff metric is pluggable (BackoffPolicy). The paper derives
// two protocols from two metrics: signal strength (SSAF, §3) and
// hop-count gradient (Routeless Routing, §4); both policies live here
// and are shared with internal/flood and internal/routing.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"routeless/internal/packet"
	"routeless/internal/sim"
)

// Context carries everything a node knows at the implicit
// synchronization point, from which the backoff delay is derived.
type Context struct {
	// Self is the deciding node.
	Self packet.NodeID
	// RSSIdBm is the received signal strength of the packet that
	// established the synchronization point (SSAF's metric).
	RSSIdBm float64
	// DistanceToSender is the true geometric distance in meters to the
	// node that created the synchronization point, when the deployment
	// knows positions (location-based flooding's metric); negative when
	// unavailable.
	DistanceToSender float64
	// HopsToTarget is the node's active-table distance to the packet's
	// target, or -1 when unknown (Routeless Routing's metric).
	HopsToTarget int
	// ExpectedHops is the expected-hop-count field carried by the
	// packet being relayed.
	ExpectedHops int
	// Rand supplies the policy's tie-breaking randomness.
	Rand *rand.Rand
}

// BackoffPolicy turns an observation context into a backoff delay. The
// boolean reports whether the node participates at all: a node with no
// useful metric (e.g. no active-table entry) can abstain.
type BackoffPolicy interface {
	Backoff(ctx Context) (sim.Time, bool)
	Name() string
}

// Uniform is the classic CSMA choice: a delay uniform over [0, Max).
// The paper's counter-1 flooding uses it; it deliberately wastes the
// prioritization opportunity and serves as the baseline.
type Uniform struct {
	Max sim.Time
}

// Backoff implements BackoffPolicy.
func (u Uniform) Backoff(ctx Context) (sim.Time, bool) {
	return sim.Time(ctx.Rand.Float64()) * u.Max, true
}

// Name implements BackoffPolicy.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%v)", u.Max) }

// SignalStrength is SSAF's policy (§3): the stronger the received
// signal — hence the closer the node to the previous sender — the
// longer the delay, so distant nodes win the relay election. The paper
// gives the idea but not a formula; this implementation maps RSSI
// linearly between the decode threshold (delay→0) and the power at a
// reference near distance (delay→Lambda), plus a small jitter to break
// ties between equidistant nodes.
type SignalStrength struct {
	// Lambda is the maximum deterministic delay (the far↔near spread).
	Lambda sim.Time
	// MinDBm is the weakest decodable power (maps to zero delay).
	MinDBm float64
	// MaxDBm is the power at the reference near distance (maps to
	// Lambda).
	MaxDBm float64
	// JitterFrac scales the uniform tie-breaking term relative to
	// Lambda; 0.1 works well.
	JitterFrac float64
}

// Backoff implements BackoffPolicy.
func (s SignalStrength) Backoff(ctx Context) (sim.Time, bool) {
	span := s.MaxDBm - s.MinDBm
	var norm float64
	if span > 0 {
		norm = (ctx.RSSIdBm - s.MinDBm) / span
	}
	norm = math.Min(math.Max(norm, 0), 1)
	d := sim.Time(norm)*s.Lambda + sim.Time(ctx.Rand.Float64()*s.JitterFrac)*s.Lambda
	return d, true
}

// Name implements BackoffPolicy.
func (s SignalStrength) Name() string { return "signal-strength" }

// HopGradient is Routeless Routing's policy (§4.1): the delay is
// derived from the node's known hop distance to the target (h_table)
// versus the expected remaining distance carried by the packet
// (h_expected):
//
//	d = λ·U(0,1)                         if h_table ≤ h_expected
//	d = λ·(h_table − h_expected + U(0,1)) if h_table > h_expected
//
// The printed equation is typographically corrupted in the paper; this
// reconstruction satisfies every property the prose states: nodes at or
// inside the expected distance draw below λ, nodes farther than
// expected draw above λ in proportion to the excess, and smaller
// h_table means a smaller delay. Nodes with no table entry abstain.
type HopGradient struct {
	// Lambda is the paper's λ: the per-hop-excess delay quantum. Too
	// small risks collisions, too large inflates end-to-end delay
	// (§4.1); the ABL2 ablation sweeps it.
	Lambda sim.Time
}

// Backoff implements BackoffPolicy.
func (h HopGradient) Backoff(ctx Context) (sim.Time, bool) {
	if ctx.HopsToTarget < 0 {
		return 0, false // no gradient information: abstain
	}
	u := sim.Time(ctx.Rand.Float64())
	excess := ctx.HopsToTarget - ctx.ExpectedHops
	if excess <= 0 {
		return h.Lambda * u, true
	}
	return h.Lambda * (sim.Time(excess) + u), true
}

// Name implements BackoffPolicy.
func (h HopGradient) Name() string { return "hop-gradient" }

// LocationAware is the location-based flooding policy SSAF
// approximates (§3: "nodes furthest from the previous sender of the
// packet should be given higher priorities. This is the main idea of
// location-based flooding. However, location information is not
// generally available"). With true positions available it is the upper
// bound on what SSAF's signal-strength proxy can achieve.
type LocationAware struct {
	// Lambda is the maximum deterministic delay.
	Lambda sim.Time
	// Range is the nominal transmission range in meters; distances at
	// Range map to zero delay, at zero to Lambda.
	Range float64
	// JitterFrac scales the uniform tie-breaking term.
	JitterFrac float64
}

// Backoff implements BackoffPolicy; nodes without position information
// abstain.
func (l LocationAware) Backoff(ctx Context) (sim.Time, bool) {
	if ctx.DistanceToSender < 0 || l.Range <= 0 {
		return 0, false
	}
	frac := 1 - ctx.DistanceToSender/l.Range
	frac = math.Min(math.Max(frac, 0), 1)
	return sim.Time(frac)*l.Lambda + sim.Time(ctx.Rand.Float64()*l.JitterFrac)*l.Lambda, true
}

// Name implements BackoffPolicy.
func (l LocationAware) Name() string { return "location-aware" }

// GradientSignal is the hop-gradient policy with signal-strength
// tie-breaking inside each band — the metric combination the paper's
// conclusion calls for ("an appropriately chosen metric … or a
// combination of several metrics"). Between gradient bands it behaves
// exactly like HopGradient; within a band, weaker signal (a node
// farther from the relayer, hence making more geographic progress)
// yields a shorter delay, exactly as in SSAF. This sharpens elections
// twice over: same-band candidates are ordered rather than tied, and
// the habitual winner is the one whose own transmission covers most of
// its competitors.
type GradientSignal struct {
	// Lambda is the band width λ (§4.1).
	Lambda sim.Time
	// MinDBm/MaxDBm span the decode-threshold..near-reference receive
	// powers, as in SignalStrength.
	MinDBm, MaxDBm float64
	// JitterFrac is the random share of the within-band delay
	// (defaulted to 0.25 by users); the rest is the signal term.
	JitterFrac float64
}

// Backoff implements BackoffPolicy.
func (g GradientSignal) Backoff(ctx Context) (sim.Time, bool) {
	if ctx.HopsToTarget < 0 {
		return 0, false
	}
	span := g.MaxDBm - g.MinDBm
	var norm float64
	if span > 0 {
		norm = (ctx.RSSIdBm - g.MinDBm) / span
	}
	norm = math.Min(math.Max(norm, 0), 1)
	jf := g.JitterFrac
	within := sim.Time((1-jf)*norm+jf*ctx.Rand.Float64()) * g.Lambda
	excess := ctx.HopsToTarget - ctx.ExpectedHops
	if excess <= 0 {
		return within, true
	}
	return g.Lambda*sim.Time(excess) + within, true
}

// Name implements BackoffPolicy.
func (g GradientSignal) Name() string { return "gradient+signal" }

// Weighted combines policies as a weighted sum of their delays — the
// paper's conclusion invites "an appropriately chosen metric or a
// combination of several metrics". A node participates only if every
// component participates.
type Weighted struct {
	Policies []BackoffPolicy
	Weights  []float64
}

// Backoff implements BackoffPolicy.
func (w Weighted) Backoff(ctx Context) (sim.Time, bool) {
	if len(w.Policies) != len(w.Weights) {
		panic("core: Weighted policies/weights length mismatch")
	}
	var sum sim.Time
	for i, p := range w.Policies {
		d, ok := p.Backoff(ctx)
		if !ok {
			return 0, false
		}
		sum += sim.Time(w.Weights[i]) * d
	}
	return sum, true
}

// Name implements BackoffPolicy.
func (w Weighted) Name() string {
	s := "weighted("
	for i, p := range w.Policies {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%.2g·%s", w.Weights[i], p.Name())
	}
	return s + ")"
}
