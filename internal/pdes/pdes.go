// Package pdes runs a tiled network as a conservative parallel
// discrete-event simulation that is result-identical to the sequential
// kernel.
//
// The arena is partitioned into geo tiles (geo.Tiling), each with its
// own event kernel. A bounded pool of worker goroutines (Workers, not
// one per tile) advances kernels in lockstep windows between epoch
// barriers: the coordinator computes a barrier time B no tile can
// causally affect another tile before, dispatches only the *active*
// tiles — those with an event strictly before B — to the pool, then —
// with all workers parked — drains the boundary-crossing deliveries the
// window produced (Config.Exchange) and runs the global control-lane
// kernel to B. Exchanged deliveries are applied in (source tile,
// transmit order), so the schedule each kernel sees is independent of
// how the workers interleaved, and a tiled run reproduces the
// sequential journal byte for byte at any tile count and any worker
// count.
//
// Idle tiles cost one PeekTime comparison per barrier, not a goroutine
// wakeup: their clocks advance lazily and are synchronized to the
// barrier only when the control lane is about to run events (global
// handlers call into radios, which timestamp energy transitions and arm
// relative timers off their tile kernel's clock — the control-lane
// contract is that every tile clock equals the global clock whenever a
// global handler runs). A tile that receives a cross-tile delivery
// becomes active by construction: the delivery lands strictly after B,
// so the next barrier scan sees it as pending work.
//
// The window bound is structural rather than geometric-only: every
// radio transmission happens inside an event armed at least MinArm in
// advance (the MAC's minimum timer interval — slot, SIFS, DIFS, or ack
// timeout), and boundary transmitters arm those events as *tagged*
// events (sim.Kernel.AtTagged). Tile i therefore cannot put a frame on
// the air before
//
//	base_i = min(PeekTagged_i, PeekTime_i + MinArm)
//
// and cannot affect another tile before base_i + CrossDelay[i], where
// CrossDelay[i] is the minimum propagation delay over tile i's
// boundary-crossing links. B is the minimum of those bounds, the global
// kernel's next event, and the run horizon.
package pdes

import (
	"fmt"
	"runtime"
	"sync"

	"routeless/internal/sim"
)

// Config wires one tiled run.
type Config struct {
	// Tiles holds the per-tile kernels, index-aligned with CrossDelay.
	Tiles []*sim.Kernel
	// Global is the control-lane kernel (fault schedules, observers).
	// It only runs at barriers, when every tile clock equals its own.
	Global *sim.Kernel
	// MinArm is the MAC's minimum arming interval: no transmission
	// starts less than MinArm after the event that committed to it was
	// scheduled.
	MinArm sim.Time
	// CrossDelay[i] lower-bounds the propagation delay of any signal
	// leaving tile i for another tile (sim.Infinity when tile i has no
	// boundary-crossing link).
	CrossDelay []sim.Time
	// Exchange drains the boundary-crossing deliveries queued during
	// the last window onto the receiving tiles' kernels, returning how
	// many it moved. Called only while every worker is parked.
	Exchange func() int
	// Workers bounds the worker pool; 0 means GOMAXPROCS. The pool is
	// clamped to the tile count. Results are identical for any value —
	// workers only decide which goroutine advances an active tile, never
	// what it observes.
	Workers int
}

// Run advances the tiled simulation to time until. It spawns a bounded
// worker pool for the duration of the call and joins it before
// returning; a panic on any worker is re-raised on the caller.
func Run(cfg Config, until sim.Time) {
	n := len(cfg.Tiles)
	if n == 0 || cfg.Global == nil || len(cfg.CrossDelay) != n || cfg.Exchange == nil {
		panic("pdes: incomplete config")
	}
	if until < cfg.Global.Now() {
		panic(fmt.Sprintf("pdes: Run(%v) before now %v", until, cfg.Global.Now()))
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// cur is the active window's barrier. The coordinator writes it only
	// while every worker is parked; the work-channel send/receive pair
	// orders that write before each worker's read.
	var cur sim.Time
	work := make(chan int)
	acks := make(chan any, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				acks <- advance(cfg.Tiles[i], cur)
			}
		}()
	}
	defer func() {
		close(work)
		wg.Wait()
	}()

	// runWindow dispatches every tile holding an event strictly before b
	// — the active worklist — to the pool and waits for all of them to
	// finish, re-raising worker panics. Tiles with nothing to run are
	// not woken; their clocks catch up in syncClocks when it matters.
	runWindow := func(b sim.Time) {
		cur = b
		sent := 0
		for i, k := range cfg.Tiles {
			if k.PeekTime() < b {
				work <- i
				sent++
			}
		}
		var failure any
		for j := 0; j < sent; j++ {
			if r := <-acks; r != nil {
				failure = r
			}
		}
		if failure != nil {
			panic(failure)
		}
	}

	// syncClocks advances every lagging tile clock to b. Called before
	// the global kernel runs events (control-lane contract) and once at
	// the end of the run: lazily-idle tiles have no events before b, so
	// this is a pure clock assignment per tile.
	syncClocks := func(b sim.Time) {
		for _, k := range cfg.Tiles {
			if k.Now() < b {
				k.RunUntilBarrier(b)
			}
		}
	}

	g := cfg.Global.Now()
	for g < until {
		b := barrier(cfg, until)
		if b >= until {
			break
		}
		if b > g {
			runWindow(b)
			cfg.Exchange()
			if cfg.Global.PeekTime() <= b {
				syncClocks(b)
			}
			cfg.Global.RunUntil(b)
			g = b
			continue
		}
		// b == g: a tagged event (or a zero cross-delay link) sits
		// exactly at the barrier, so no parallel window opens. Close the
		// gap sequentially — workers are parked, so the coordinator owns
		// every kernel.
		if cfg.Global.PeekTime() <= g {
			syncClocks(g)
			cfg.Global.RunUntil(g)
			continue
		}
		stepMinTile(cfg.Tiles)
		cfg.Exchange()
	}

	// Every remaining bound is at or past the horizon: no tile can
	// affect another before until, so run each active tile straight
	// there, then drain exchanges and events landing exactly at the
	// horizon (RunUntil is inclusive, matching the sequential kernel).
	// Tile clocks are synchronized first so horizon-time control-lane
	// events observe them at the global clock, and once more at the end
	// so the run's postcondition — every clock at until — holds for
	// whoever samples state afterwards.
	runWindow(until)
	syncClocks(until)
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("pdes: final drain did not quiesce")
		}
		moved := cfg.Exchange()
		cfg.Global.RunUntil(until)
		ran := false
		for _, k := range cfg.Tiles {
			if k.PeekTime() <= until {
				k.RunUntil(until)
				ran = true
			}
		}
		if moved == 0 && !ran && cfg.Global.PeekTime() > until {
			break
		}
	}
}

// barrier computes the next epoch barrier: the earliest time any tile
// could causally affect another, capped by the global kernel's next
// event and the run horizon.
func barrier(cfg Config, until sim.Time) sim.Time {
	b := until
	if p := cfg.Global.PeekTime(); p < b {
		b = p
	}
	for i, k := range cfg.Tiles {
		base := k.PeekTagged()
		if alt := k.PeekTime() + cfg.MinArm; alt < base {
			base = alt
		}
		if bound := base + cfg.CrossDelay[i]; bound < b {
			b = bound
		}
	}
	return b
}

// stepMinTile sequentially executes the single earliest pending tile
// event (lowest time, then lowest tile index) — the fallback that
// guarantees progress when the conservative window is empty.
func stepMinTile(tiles []*sim.Kernel) {
	best := -1
	at := sim.Infinity
	for i, k := range tiles {
		if p := k.PeekTime(); p < at {
			at, best = p, i
		}
	}
	if best < 0 {
		panic("pdes: stalled with no pending tile events")
	}
	tiles[best].Step()
}

// advance runs one tile's window, converting a panic into a value the
// coordinator can re-raise with the other workers safely parked. A tile
// whose clock is already at or past the barrier (possible only after a
// sequential fallback step) has nothing to do before it and skips.
func advance(k *sim.Kernel, b sim.Time) (failure any) {
	defer func() {
		if r := recover(); r != nil {
			failure = fmt.Errorf("pdes: tile worker panic: %v", r)
		}
	}()
	if b > k.Now() {
		k.RunUntilBarrier(b)
	}
	return nil
}
