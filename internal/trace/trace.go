// Package trace records which nodes relayed which packets and renders
// the Figure 2 visualization: "the actual paths taken by different
// packets", showing Routeless Routing steering traffic around congested
// areas.
package trace

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"routeless/internal/geo"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// Hop is one relay event for a logical packet.
type Hop struct {
	Node     packet.NodeID
	At       sim.Time
	HopCount int
}

// PathCollector accumulates relay events keyed by logical packet. Wire
// its Record method into a protocol's OnRelay hook.
type PathCollector struct {
	paths map[packet.FlowKey][]Hop
	relay map[packet.NodeID]int // per-node relay load
}

// NewPathCollector returns an empty collector.
func NewPathCollector() *PathCollector {
	return &PathCollector{
		paths: make(map[packet.FlowKey][]Hop),
		relay: make(map[packet.NodeID]int),
	}
}

// Record logs that node transmitted pkt at time at.
func (c *PathCollector) Record(node packet.NodeID, pkt *packet.Packet, at sim.Time) {
	key := pkt.Key()
	c.paths[key] = append(c.paths[key], Hop{Node: node, At: at, HopCount: pkt.HopCount})
	c.relay[node]++
}

// Path returns the relay sequence for a logical packet in transmission
// order.
func (c *PathCollector) Path(key packet.FlowKey) []Hop {
	hops := append([]Hop(nil), c.paths[key]...)
	slices.SortStableFunc(hops, func(a, b Hop) int { return cmp.Compare(a.At, b.At) })
	return hops
}

// Keys returns every recorded logical packet, ordered by origin, kind,
// then sequence number.
func (c *PathCollector) Keys() []packet.FlowKey {
	keys := make([]packet.FlowKey, 0, len(c.paths))
	for k := range c.paths {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b packet.FlowKey) int {
		if c := cmp.Compare(a.Origin, b.Origin); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
	return keys
}

// RelayLoad returns how many transmissions node made.
func (c *PathCollector) RelayLoad(node packet.NodeID) int { return c.relay[node] }

// NodesUsed returns the distinct relays of all packets from origin to
// target of the given kind — the union of route nodes for one flow.
func (c *PathCollector) NodesUsed(origin packet.NodeID, kind packet.Kind) map[packet.NodeID]int {
	used := make(map[packet.NodeID]int)
	for key, hops := range c.paths {
		if key.Origin != origin || key.Kind != kind {
			continue
		}
		for _, h := range hops {
			used[h.Node]++
		}
	}
	return used
}

// Canvas renders node positions and per-flow relay sets as ASCII art.
type Canvas struct {
	rect   geo.Rect
	width  int
	height int
	cells  []rune
}

// NewCanvas creates a blank canvas mapping rect onto width columns; the
// row count preserves the aspect ratio (terminal cells are ~2:1).
func NewCanvas(rect geo.Rect, width int) *Canvas {
	height := int(float64(width) * rect.Height() / rect.Width() / 2)
	if height < 1 {
		height = 1
	}
	c := &Canvas{rect: rect, width: width, height: height}
	c.cells = make([]rune, width*height)
	for i := range c.cells {
		c.cells[i] = ' '
	}
	return c
}

func (c *Canvas) cellOf(p geo.Point) (int, bool) {
	if !c.rect.Contains(p) {
		return 0, false
	}
	x := int(float64(c.width) * (p.X - c.rect.Min.X) / c.rect.Width())
	y := int(float64(c.height) * (p.Y - c.rect.Min.Y) / c.rect.Height())
	if x >= c.width {
		x = c.width - 1
	}
	if y >= c.height {
		y = c.height - 1
	}
	return y*c.width + x, true
}

// Plot draws ch at position p. Later plots overwrite earlier ones, so
// draw background first, paths next, endpoints last.
func (c *Canvas) Plot(p geo.Point, ch rune) {
	if idx, ok := c.cellOf(p); ok {
		c.cells[idx] = ch
	}
}

// PlotAll draws ch at every position.
func (c *Canvas) PlotAll(ps []geo.Point, ch rune) {
	for _, p := range ps {
		c.Plot(p, ch)
	}
}

// String renders the canvas with a border.
func (c *Canvas) String() string {
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", c.width) + "+\n")
	for y := 0; y < c.height; y++ {
		b.WriteByte('|')
		b.WriteString(string(c.cells[y*c.width : (y+1)*c.width]))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", c.width) + "+\n")
	return b.String()
}

// FlowSummary formats one flow's relay usage for reports: node ids with
// their relay counts, ordered by count descending.
func FlowSummary(used map[packet.NodeID]int) string {
	type nc struct {
		id packet.NodeID
		n  int
	}
	list := make([]nc, 0, len(used))
	for id, n := range used {
		list = append(list, nc{id, n})
	}
	slices.SortFunc(list, func(a, b nc) int {
		if c := cmp.Compare(b.n, a.n); c != 0 {
			return c // busiest first
		}
		return cmp.Compare(a.id, b.id)
	})
	parts := make([]string, len(list))
	for i, x := range list {
		parts[i] = fmt.Sprintf("%v×%d", x.id, x.n)
	}
	return strings.Join(parts, " ")
}
