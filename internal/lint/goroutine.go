package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// Goroutine forbids `go` statements and sync / sync/atomic imports in
// every internal/ package except the worker-pool engines. The DES
// kernel is sequential by design: causality is the event heap's total
// order, and determinism depends on it. Concurrency belongs in the
// engines built to contain it: internal/parallel (the goroutine pool),
// internal/sweep (the cell scheduler on top of it), and internal/pdes
// (the tiled intra-run engine, whose barrier protocol keeps each
// kernel single-threaded within its windows). internal/serve is also
// exempt — for sync imports only, not go statements: its mutexes guard
// the HTTP-facing journal buffer and run registry, provably off the
// simulation path (each run is owned by one sweep worker from build to
// finish, and handlers never touch a live run).
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "forbid go statements and sync primitives in internal/ (except internal/parallel, internal/sweep, and internal/pdes); the kernel is sequential",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	if !p.InInternal() || isWorkerPoolPkg(p.Path) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				if isServePkg(p.Path) {
					// The HTTP layer may lock its client-facing
					// buffers; runs still execute on sweep workers.
					continue
				}
				p.Reportf(imp.Pos(), "import %q: sync primitives imply shared-state concurrency; the simulation kernel is sequential (only internal/parallel, internal/sweep, and internal/pdes may coordinate goroutines)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "go statement: simulation code must stay sequential; parallelize across runs with internal/parallel")
			}
			return true
		})
	}
}

func isWorkerPoolPkg(path string) bool {
	return strings.HasSuffix(path, "/internal/parallel") || path == "internal/parallel" ||
		strings.HasSuffix(path, "/internal/sweep") || path == "internal/sweep" ||
		strings.HasSuffix(path, "/internal/pdes") || path == "internal/pdes"
}

func isServePkg(path string) bool {
	return strings.HasSuffix(path, "/internal/serve") || path == "internal/serve"
}
