package sim

import "testing"

// BenchmarkScheduleRun measures raw event throughput: schedule-and-fire
// of independent events.
func BenchmarkScheduleRun(b *testing.B) {
	k := NewKernel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(Time(i)*1e-6, func() {})
		if i%1024 == 1023 {
			k.Run()
		}
	}
	k.Run()
}

// BenchmarkSelfScheduling measures the recycling fast path: one event
// chain rescheduling itself b.N times.
func BenchmarkSelfScheduling(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			k.Schedule(1e-6, step)
		}
	}
	b.ResetTimer()
	k.Schedule(0, step)
	k.Run()
}

// BenchmarkTimerReset measures the protocol-timer hot path.
func BenchmarkTimerReset(b *testing.B) {
	k := NewKernel(1)
	t := NewTimer(k, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(1)
	}
	t.Stop()
}

// BenchmarkHeapMixed measures interleaved schedule/cancel at a queue
// depth typical of a 500-node simulation.
func BenchmarkHeapMixed(b *testing.B) {
	k := NewKernel(1)
	const depth = 4096
	evs := make([]*Event, 0, depth)
	for i := 0; i < depth; i++ {
		evs = append(evs, k.Schedule(Time(i)+1e6, func() {}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Cancel(evs[i%depth])
		evs[i%depth] = k.Schedule(Time(i%depth)+1e6, func() {})
	}
}
