// Package traffic generates the paper's workloads: constant-bit-rate
// (CBR) flows between randomly selected source/destination pairs
// ("50 connections were selected between randomly chosen sources and
// destinations", §3; "the constant-bit-rate model is used for the
// traffic pattern", §4.3).
package traffic

import (
	"math/rand"

	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// Pair is one source→destination connection.
type Pair struct {
	Src, Dst packet.NodeID
}

// RandomPairs draws count connections between distinct nodes of an
// n-node network. Sources and destinations may repeat across pairs, but
// never within one (src != dst), and no (src,dst) pair repeats.
func RandomPairs(r *rand.Rand, n, count int) []Pair {
	if n < 2 {
		panic("traffic: need at least two nodes")
	}
	maxPairs := n * (n - 1)
	if count > maxPairs {
		panic("traffic: more pairs requested than exist")
	}
	seen := make(map[Pair]bool, count)
	pairs := make([]Pair, 0, count)
	for len(pairs) < count {
		p := Pair{
			Src: packet.NodeID(r.Intn(n)),
			Dst: packet.NodeID(r.Intn(n)),
		}
		if p.Src == p.Dst || seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}
	return pairs
}

// CBR drives one node's protocol with fixed-interval packets toward a
// destination.
type CBR struct {
	// Interval between packets in seconds.
	Interval sim.Time
	// Size of each packet in bytes; 0 lets the protocol choose.
	Size int
	// OnSend, if set, observes each generation (metering hook).
	OnSend func()

	n      *node.Node
	target packet.NodeID
	ticker *sim.Ticker
	sent   uint64
}

// NewCBR builds a stopped CBR flow from n to target.
func NewCBR(n *node.Node, target packet.NodeID, interval sim.Time, size int) *CBR {
	if interval <= 0 {
		panic("traffic: CBR interval must be positive")
	}
	c := &CBR{Interval: interval, Size: size, n: n, target: target}
	c.ticker = sim.NewTicker(n.Kernel, interval, c.emit)
	return c
}

func (c *CBR) emit() {
	// A failed node generates nothing while down — its application is
	// dead along with its transceiver.
	if !c.n.Up() {
		return
	}
	c.sent++
	if c.OnSend != nil {
		c.OnSend()
	}
	c.n.Net.Send(c.target, c.Size)
}

// Start begins generation after a uniformly random fraction of one
// interval, de-phasing flows across the network.
func (c *CBR) Start() {
	c.ticker.StartAfter(sim.Time(c.n.Rng.Float64()) * c.Interval)
}

// StartAt begins generation at a fixed offset (deterministic phase).
func (c *CBR) StartAt(offset sim.Time) { c.ticker.StartAfter(offset) }

// Stop halts generation.
func (c *CBR) Stop() { c.ticker.Stop() }

// Sent returns how many packets were generated.
func (c *CBR) Sent() uint64 { return c.sent }

// Target returns the flow's destination.
func (c *CBR) Target() packet.NodeID { return c.target }
