package experiments

import (
	//lint:ignore goroutine event counting is a commutative sum across trials; uint64 addition is order-independent, so the total is deterministic even though trial completion order is not
	"sync/atomic"

	"routeless/internal/node"
	"routeless/internal/sim"
)

// processed accumulates the kernel event counts of every run executed
// by this package since the last ResetEventCount. Trials of one figure
// run concurrently (internal/parallel), so the accumulator is atomic;
// because addition commutes, the total does not depend on completion
// order and stays deterministic. cmd/simbench divides this by wall
// time to report events/sec, the kernel's headline throughput number.
var processed atomic.Uint64

// ResetEventCount zeroes the package-wide event counter.
func ResetEventCount() { processed.Store(0) }

// EventCount returns the number of kernel events executed by runs in
// this package since the last ResetEventCount.
func EventCount() uint64 { return processed.Load() }

// countEvents folds one finished kernel into the package counter.
func countEvents(k *sim.Kernel) { processed.Add(k.Processed()) }

// countNetworkEvents folds every kernel of a finished network — all
// PDES tiles plus the control lane — into the package counter.
func countNetworkEvents(nw *node.Network) { processed.Add(nw.Processed()) }
