package parallel

import (
	"sync"
	"testing"

	"routeless/internal/rng"
)

// These tests exist to be run under the race detector (CI runs
// `go test -race ./...`): Map is the one concurrency primitive the
// simulator owns, so it gets hammered from many goroutines at once,
// with nested sweeps, the way a batch of experiment drivers would use
// it.

// sweep is a stand-in for one parameter point: a deterministic
// rng-driven computation heavy enough to interleave workers.
func sweep(seed int64, i int) float64 {
	r := rng.ForNode(seed, rng.StreamTraffic, i)
	sum := 0.0
	for k := 0; k < 200; k++ {
		sum += r.Float64()
	}
	return sum
}

func TestMapHammerConcurrentSweeps(t *testing.T) {
	const (
		drivers = 8  // concurrent "experiment harnesses"
		points  = 64 // parameter points per sweep
		workers = 4  // Map workers per sweep
	)
	want := make([]float64, points)
	for i := range want {
		want[i] = sweep(1, i)
	}

	var wg sync.WaitGroup
	errs := make(chan string, drivers)
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := Map(workers, points, func(i int) float64 { return sweep(1, i) })
			for i := range got {
				if got[i] != want[i] {
					errs <- "concurrent sweep diverged from serial reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Nested use: a sweep whose per-point function itself fans out, as a
// figure harness running per-seed replications inside per-interval
// points would.
func TestMapHammerNested(t *testing.T) {
	outer := Map(4, 16, func(i int) []float64 {
		return Map(3, 8, func(j int) float64 { return sweep(int64(i+1), j) })
	})
	for i, inner := range outer {
		for j, v := range inner {
			if v != sweep(int64(i+1), j) {
				t.Fatalf("outer %d inner %d diverged", i, j)
			}
		}
	}
}

// ForEach writing disjoint indices from many goroutines must be clean
// under -race and leave every slot filled exactly once.
func TestForEachHammerDisjointWrites(t *testing.T) {
	const n = 512
	hits := make([]int, n)
	ForEach(8, n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d written %d times", i, h)
		}
	}
}
