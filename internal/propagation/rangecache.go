package propagation

// rangeKey identifies one RangeFor query. The fields are stored
// verbatim from the caller's arguments and compared as a unit, so the
// struct equality below is a tag check on assigned values, never a
// comparison of recomputed floats.
type rangeKey struct {
	txDBm, thresholdDBm, lo, hi float64
}

type rangeEntry struct {
	key    rangeKey
	rangeM float64
}

// RangeCache memoizes RangeFor for a fixed model. The bisection runs
// ~100 log/pow evaluations per query; topology checks (DecodeRange,
// NeighborCount, Connected) issue the same query once per node, so
// fields where radios share a parameter set pay for exactly one
// bisection instead of N.
//
// The cache is append-only and expected to stay tiny (one entry per
// distinct radio parameter set); lookups are a linear scan, which for
// one or two entries beats any map.
type RangeCache struct {
	model   Model
	entries []rangeEntry
}

// NewRangeCache returns an empty cache bound to m. Results are only
// valid while m's parameters are not mutated — models in this
// repository are configured once at construction.
func NewRangeCache(m Model) *RangeCache {
	return &RangeCache{model: m}
}

// RangeFor returns the memoized equivalent of
// propagation.RangeFor(model, txDBm, thresholdDBm, lo, hi).
func (c *RangeCache) RangeFor(txDBm, thresholdDBm, lo, hi float64) float64 {
	k := rangeKey{txDBm, thresholdDBm, lo, hi}
	for i := range c.entries {
		if c.entries[i].key == k {
			return c.entries[i].rangeM
		}
	}
	r := RangeFor(c.model, txDBm, thresholdDBm, lo, hi)
	c.entries = append(c.entries, rangeEntry{key: k, rangeM: r})
	return r
}
