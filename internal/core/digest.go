package core

import "routeless/internal/digest"

// DigestState folds the elector's round machine into h: round counter,
// the decided latch and outcome, and the synchronization context the
// backoff policy saw. The armed backoff timer is captured by the
// kernel's pending-event digest.
func (e *Elector) DigestState(h *digest.Hash) {
	h.Uint64(uint64(e.round))
	h.Bool(e.decided)
	h.Uint64(uint64(e.outcome.Round))
	h.Int64(int64(e.outcome.Leader))
	h.Bool(e.outcome.Won)
	h.Int64(int64(e.ctx.Self))
	h.Float64(e.ctx.RSSIdBm)
	h.Float64(e.ctx.DistanceToSender)
}

// DigestState folds the arbiter's retry machine into h: the current
// round, acknowledged leader, the done latch, the retry count, and when
// the logical election began.
func (a *Arbiter) DigestState(h *digest.Hash) {
	h.Uint64(uint64(a.round))
	h.Int64(int64(a.leader))
	h.Bool(a.done)
	h.Int(a.retries)
	h.Float64(float64(a.roundStart))
}
