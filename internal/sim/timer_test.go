package sim

import "testing"

func TestTimerBasic(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	tm := NewTimer(k, func() { fired++ })
	if tm.Pending() {
		t.Fatal("new timer should not be pending")
	}
	tm.Reset(1.0)
	if !tm.Pending() {
		t.Fatal("timer should be pending after Reset")
	}
	if tm.Deadline() != 1.0 {
		t.Fatalf("deadline %v, want 1", tm.Deadline())
	}
	k.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if tm.Pending() {
		t.Fatal("timer should not be pending after firing")
	}
	if tm.Fires() != 1 {
		t.Fatalf("Fires %d, want 1", tm.Fires())
	}
}

func TestTimerResetReplacesSchedule(t *testing.T) {
	k := NewKernel(1)
	var at Time
	tm := NewTimer(k, func() { at = k.Now() })
	tm.Reset(1.0)
	tm.Reset(5.0) // should cancel the 1.0 firing
	k.Run()
	if at != 5.0 {
		t.Fatalf("fired at %v, want 5", at)
	}
	if tm.Fires() != 1 {
		t.Fatalf("fired %d times, want 1", tm.Fires())
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	tm := NewTimer(k, func() { t.Fatal("stopped timer fired") })
	tm.Reset(1.0)
	tm.Stop()
	tm.Stop() // idempotent
	k.Run()
}

func TestTimerResetAt(t *testing.T) {
	k := NewKernel(1)
	var at Time
	tm := NewTimer(k, func() { at = k.Now() })
	k.Schedule(2.0, func() { tm.ResetAt(7.0) })
	k.Run()
	if at != 7.0 {
		t.Fatalf("fired at %v, want 7", at)
	}
}

func TestTimerDeadlineWhenStopped(t *testing.T) {
	k := NewKernel(1)
	tm := NewTimer(k, func() {})
	if tm.Deadline() != Infinity {
		t.Fatal("stopped timer deadline should be Infinity")
	}
}

func TestTimerRestartInsideCallback(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	var tm *Timer
	tm = NewTimer(k, func() {
		times = append(times, k.Now())
		if len(times) < 3 {
			tm.Reset(1.0)
		}
	})
	tm.Reset(1.0)
	k.Run()
	want := []Time{1, 2, 3}
	if len(times) != 3 {
		t.Fatalf("fired %d times, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestTickerPeriodic(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	tk := NewTicker(k, 2.0, func() { times = append(times, k.Now()) })
	tk.Start()
	k.RunUntil(9.0)
	want := []Time{2, 4, 6, 8}
	if len(times) != len(want) {
		t.Fatalf("ticked %d times, want %d: %v", len(times), len(want), times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks %v, want %v", times, want)
		}
	}
	tk.Stop()
	k.SetHorizon(Infinity)
	k.Run()
	if len(times) != len(want) {
		t.Fatal("ticker kept ticking after Stop")
	}
}

func TestTickerStartAfterDephases(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	tk := NewTicker(k, 2.0, func() { times = append(times, k.Now()) })
	tk.StartAfter(0.5)
	k.RunUntil(5.0)
	want := []Time{0.5, 2.5, 4.5}
	if len(times) != len(want) {
		t.Fatalf("ticks %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks %v, want %v", times, want)
		}
	}
}

func TestTickerSetPeriod(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	tk := NewTicker(k, 1.0, func() { times = append(times, k.Now()) })
	tk.Start()
	k.RunUntil(2.5) // ticks at 1, 2
	tk.SetPeriod(3.0)
	k.RunUntil(9.0) // next tick at 3 (already scheduled with old period), then 6, 9
	if len(times) < 4 {
		t.Fatalf("ticks %v", times)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTicker(NewKernel(1), 0, func() {})
}

func TestNilCallbacksPanic(t *testing.T) {
	k := NewKernel(1)
	func() {
		defer func() { recover() }()
		NewTimer(k, nil)
		t.Error("NewTimer(nil) should panic")
	}()
	func() {
		defer func() { recover() }()
		k.Schedule(1, nil)
		t.Error("Schedule(nil) should panic")
	}()
}
