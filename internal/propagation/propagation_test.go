package propagation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDBmConversionRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-90, -30, 0, 10, 24.5} {
		mw := DBmToMilliwatt(dbm)
		back := MilliwattToDBm(mw)
		if math.Abs(back-dbm) > 1e-9 {
			t.Fatalf("round trip %v -> %v -> %v", dbm, mw, back)
		}
	}
	if !math.IsInf(MilliwattToDBm(0), -1) {
		t.Fatal("0 mW should be -Inf dBm")
	}
}

func TestFreeSpaceMonotone(t *testing.T) {
	m := NewFreeSpace()
	prev := m.ReceivedPower(20, 1)
	for d := 2.0; d <= 2000; d += 7 {
		p := m.ReceivedPower(20, d)
		if p >= prev {
			t.Fatalf("power not strictly decreasing at d=%v: %v >= %v", d, p, prev)
		}
		prev = p
	}
}

func TestFreeSpaceInverseSquare(t *testing.T) {
	m := NewFreeSpace()
	// Doubling distance should cost exactly 20·log10(2) ≈ 6.02 dB.
	p1 := m.ReceivedPower(20, 100)
	p2 := m.ReceivedPower(20, 200)
	if math.Abs((p1-p2)-20*math.Log10(2)) > 1e-9 {
		t.Fatalf("free space slope wrong: Δ=%v dB", p1-p2)
	}
}

func TestFreeSpaceNearFieldClamp(t *testing.T) {
	m := NewFreeSpace()
	if m.ReceivedPower(20, 0) != m.ReceivedPower(20, m.RefDistance) {
		t.Fatal("near field not clamped to reference distance")
	}
}

func TestFreeSpaceTxPowerLinearity(t *testing.T) {
	m := NewFreeSpace()
	// +3 dB at the transmitter is +3 dB at every receiver.
	d := 137.0
	if diff := m.ReceivedPower(23, d) - m.ReceivedPower(20, d); math.Abs(diff-3) > 1e-9 {
		t.Fatalf("tx power linearity broken: %v", diff)
	}
}

func TestTwoRayMatchesFreeSpaceBelowCrossover(t *testing.T) {
	m := NewTwoRay()
	cross := m.Crossover()
	if cross < 10 || cross > 1000 {
		t.Fatalf("implausible crossover %v m", cross)
	}
	d := cross / 2
	if got, want := m.ReceivedPower(20, d), m.FreeSpace.ReceivedPower(20, d); got != want {
		t.Fatalf("below crossover: got %v, want %v", got, want)
	}
}

func TestTwoRayFourthPowerBeyondCrossover(t *testing.T) {
	m := NewTwoRay()
	d := m.Crossover() * 3
	p1 := m.ReceivedPower(20, d)
	p2 := m.ReceivedPower(20, 2*d)
	if math.Abs((p1-p2)-40*math.Log10(2)) > 1e-9 {
		t.Fatalf("two-ray slope wrong: Δ=%v dB, want %v", p1-p2, 40*math.Log10(2))
	}
}

func TestTwoRayFallsFasterThanFreeSpace(t *testing.T) {
	fs, tr := NewFreeSpace(), NewTwoRay()
	d := tr.Crossover() * 4
	if tr.ReceivedPower(20, d) >= fs.ReceivedPower(20, d) {
		t.Fatal("two-ray should be weaker than free space far out")
	}
}

func TestLogDistance(t *testing.T) {
	base := NewFreeSpace()
	m := NewLogDistance(base, 1, 4)
	// At the reference distance they agree.
	if m.ReceivedPower(20, 1) != base.ReceivedPower(20, 1) {
		t.Fatal("mismatch at reference distance")
	}
	// Slope is 40 dB/decade.
	p1 := m.ReceivedPower(20, 10)
	p2 := m.ReceivedPower(20, 100)
	if math.Abs((p1-p2)-40) > 1e-9 {
		t.Fatalf("log-distance slope: Δ=%v, want 40", p1-p2)
	}
}

func TestRangeForCalibration(t *testing.T) {
	m := NewFreeSpace()
	tx := 24.5
	thr := ThresholdFor(m, tx, 250)
	r := RangeFor(m, tx, thr, 1, 10000)
	if math.Abs(r-250) > 0.01 {
		t.Fatalf("calibrated range %v, want 250", r)
	}
}

func TestRangeForEdgeCases(t *testing.T) {
	m := NewFreeSpace()
	if r := RangeFor(m, 20, 1000 /* absurd threshold */, 1, 1000); r != 0 {
		t.Fatalf("unreachable threshold should give 0, got %v", r)
	}
	if r := RangeFor(m, 20, -1000 /* trivially met */, 1, 1000); r != 1000 {
		t.Fatalf("trivially met threshold should return hi, got %v", r)
	}
}

// Property: ThresholdFor and RangeFor are inverses for any model.
func TestQuickCalibrationInverse(t *testing.T) {
	models := []Model{NewFreeSpace(), NewTwoRay(), NewLogDistance(NewFreeSpace(), 1, 3)}
	f := func(mi uint8, rangeM float64) bool {
		m := models[int(mi)%len(models)]
		want := 10 + math.Mod(math.Abs(rangeM), 1000)
		thr := ThresholdFor(m, 24.5, want)
		got := RangeFor(m, 24.5, thr, 1, 5000)
		return math.Abs(got-want) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNoFade(t *testing.T) {
	if (NoFade{}).Fade(nil, -70) != -70 {
		t.Fatal("NoFade must be identity")
	}
}

func TestLogNormalShadowStatistics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := LogNormalShadow{SigmaDB: 6}
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Fade(r, -70) - (-70)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Fatalf("shadow mean %v, want ~0", mean)
	}
	if math.Abs(std-6) > 0.2 {
		t.Fatalf("shadow std %v, want ~6", std)
	}
}

func TestRayleighUnitMeanPower(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := Rayleigh{}
	const n = 50000
	var sumLinear float64
	mean := -70.0
	for i := 0; i < n; i++ {
		sumLinear += DBmToMilliwatt(f.Fade(r, mean))
	}
	avg := sumLinear / n
	want := DBmToMilliwatt(mean)
	if math.Abs(avg-want)/want > 0.05 {
		t.Fatalf("rayleigh mean power %v, want %v (unit-mean fading)", avg, want)
	}
}

func TestRayleighLargeScaleTrendHolds(t *testing.T) {
	// The paper's §3 argument: even with dramatic small-scale variation,
	// weaker-with-distance holds at large scale. Average many fades at
	// two distances and check the ordering.
	r := rand.New(rand.NewSource(3))
	m := NewFreeSpace()
	f := Rayleigh{}
	avg := func(d float64) float64 {
		var s float64
		for i := 0; i < 5000; i++ {
			s += f.Fade(r, m.ReceivedPower(20, d))
		}
		return s / 5000
	}
	if avg(100) <= avg(200) {
		t.Fatal("large-scale distance trend violated under Rayleigh fading")
	}
}

func TestDelay(t *testing.T) {
	d := Delay(SpeedOfLight)
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("Delay(c) = %v, want 1s", d)
	}
	// 250 m ≈ 0.83 µs — negligible vs. millisecond backoffs, as §2 assumes.
	if Delay(250) > 1e-5 {
		t.Fatal("250 m delay should be well under 10µs")
	}
}

func TestNames(t *testing.T) {
	for _, m := range []Model{NewFreeSpace(), NewTwoRay(), NewLogDistance(NewFreeSpace(), 1, 3)} {
		if m.Name() == "" {
			t.Fatal("empty model name")
		}
	}
	for _, f := range []Fader{NoFade{}, LogNormalShadow{6}, Rayleigh{}} {
		if f.Name() == "" {
			t.Fatal("empty fader name")
		}
	}
}
