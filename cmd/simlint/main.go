// Command simlint enforces the simulator's determinism invariants with
// static analysis. It loads the requested packages into one
// whole-module program (call graph + taint summaries, see
// internal/lint), runs every rule with flow-aware context, prints
// findings as file:line:col diagnostics, and exits nonzero when any
// survive.
//
// Usage:
//
//	simlint ./...          # whole module (what CI runs)
//	simlint ./internal/sim ./cmd/wmansim
//	simlint -list          # show the rule set
//	simlint -rules globalrand,floateq ./...
//	simlint -audit ./...   # also fail on stale //lint:ignore directives
//	simlint -json ./...    # machine-readable findings + shard-safety report
//	simlint -json -report out.json ./...  # write the JSON to a file too
//
// Suppress a finding in source with:
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line above. The reason is mandatory.
// -audit flags directives that no longer suppress anything; because
// staleness is judged against the full rule set, -audit cannot be
// combined with a -rules subset. -audit is also the shard-safety hard
// gate: it fails when any package-level global is classified both
// mutable and handler-written in the shardsafety inventory, and no
// //lint:ignore directive can waive that (suppressions silence
// diagnostics, not the inventory).
//
// The JSON payload carries the findings, the audit result, and the
// shardsafety/v1 inventory: every event-handler entry point, every
// package-level variable classified readonly/atomic/mutable, and the
// shared singleton types reached from handler context — the go/no-go
// input for the PDES tile decomposition.
//
// Exit status: 0 clean, 1 findings (or stale directives under -audit),
// 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"routeless/internal/lint"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonStale is one stale suppression in -json output.
type jsonStale struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

// jsonReport is the full -json payload.
type jsonReport struct {
	Findings    []jsonFinding     `json:"findings"`
	Stale       []jsonStale       `json:"stale"`
	Suppressed  int               `json:"suppressed"`
	ShardSafety *lint.ShardReport `json:"shardSafety"`
}

func main() {
	var (
		list    = flag.Bool("list", false, "list analyzers and exit")
		rules   = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		audit   = flag.Bool("audit", false, "fail on stale //lint:ignore directives (full rule set only)")
		jsonOut = flag.Bool("json", false, "emit findings and the shard-safety report as JSON on stdout")
		report  = flag.String("report", "", "also write the JSON payload to this file")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	subset := false
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		unknown := make([]string, 0, len(want))
		for r := range want {
			unknown = append(unknown, r)
		}
		slices.Sort(unknown)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "simlint: unknown rule(s) %s (try -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = sel
		subset = len(sel) < len(lint.All())
	}
	if *audit && subset {
		fmt.Fprintln(os.Stderr, "simlint: -audit needs the full rule set; drop -rules (staleness is judged against every rule)")
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	dirs, err := expandArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	loader, err := lint.NewLoader(moduleRoot(dirs), "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	// Load everything first: the flow-aware rules need the whole
	// program (cross-package call edges, taint summaries) before any
	// unit is judged.
	var units []*lint.Unit
	for _, dir := range dirs {
		us, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		units = append(units, us...)
	}
	prog := lint.BuildProgram(units)
	res := lint.Analyze(prog, analyzers)

	failed := len(res.Diags) > 0
	if *audit && len(res.Stale) > 0 {
		failed = true
	}
	// -audit is also the shard-safety hard gate: a package-level global
	// that is both mutable and handler-written breaks the tiled PDES
	// engine's determinism contract, and unlike the sharedstate
	// diagnostics this check reads the raw inventory, so a //lint:ignore
	// cannot waive it.
	var shardViolations []string
	if *audit {
		shardViolations = lint.BuildShardReport(prog).Violations()
		if len(shardViolations) > 0 {
			failed = true
		}
	}

	if *jsonOut || *report != "" {
		payload := buildJSON(res, prog)
		if *jsonOut {
			if err := writeJSON(os.Stdout, payload); err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
				os.Exit(2)
			}
		}
		if *report != "" {
			f, err := os.Create(*report)
			if err == nil {
				err = writeJSON(f, payload)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
				os.Exit(2)
			}
		}
	}
	if !*jsonOut {
		for _, d := range res.Diags {
			fmt.Println(d)
		}
		if *audit {
			for _, s := range res.Stale {
				fmt.Println(s)
			}
			for _, v := range shardViolations {
				fmt.Println(v)
			}
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(res.Diags))
	}
	if *audit && len(res.Stale) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d stale suppression(s)\n", len(res.Stale))
	}
	if len(shardViolations) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d shard-safety violation(s): mutable package-level state written from event handlers\n", len(shardViolations))
	}
	if failed {
		os.Exit(1)
	}
}

// buildJSON assembles the machine-readable payload, including the
// shard-safety inventory computed from the same program.
func buildJSON(res *lint.Result, prog *lint.Program) *jsonReport {
	payload := &jsonReport{
		Findings:    []jsonFinding{},
		Stale:       []jsonStale{},
		Suppressed:  res.Suppressed,
		ShardSafety: lint.BuildShardReport(prog),
	}
	for _, d := range res.Diags {
		payload.Findings = append(payload.Findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	for _, s := range res.Stale {
		payload.Stale = append(payload.Stale, jsonStale{
			File: s.Pos.Filename, Line: s.Pos.Line, Rule: s.Rule, Reason: s.Reason,
		})
	}
	return payload
}

func writeJSON(w io.Writer, payload *jsonReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// expandArgs turns package patterns into directories. A trailing /...
// recurses; plain paths name one directory.
func expandArgs(args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		abs, err := filepath.Abs(d)
		if err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, a := range args {
		if root, ok := strings.CutSuffix(a, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			sub, err := lint.Walk(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		fi, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", a)
		}
		add(a)
	}
	return dirs, nil
}

// moduleRoot finds the nearest ancestor of the first target directory
// (or the working directory) containing go.mod.
func moduleRoot(dirs []string) string {
	start, _ := os.Getwd()
	if len(dirs) > 0 {
		start = dirs[0]
	}
	for d := start; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return start
		}
		d = parent
	}
}
