// Package phy implements the physical layer of the simulated wireless
// network: half-duplex radios with carrier sensing and an SINR-based
// collision/capture model, the shared broadcast channel that couples
// them through a propagation model, and per-radio energy accounting.
//
// The model follows the usual ns-2/SENSE conventions: a frame locks the
// receiver when it arrives above the receive threshold while the radio
// is idle; overlapping energy corrupts it unless the frame stays above
// the capture ratio; anything above the carrier-sense threshold marks
// the medium busy.
package phy

import (
	"fmt"

	"routeless/internal/packet"
	"routeless/internal/propagation"
	"routeless/internal/sim"
)

// State is the transceiver state.
type State uint8

// Radio states. Off models the paper's §4.3 node failures ("the
// transceiver of a node is turned off and not able to transmit or
// receive any packets"); Sleep is the low-power state Routeless Routing
// permits route nodes to enter (§4.2).
const (
	StateIdle State = iota
	StateRx
	StateTx
	StateSleep
	StateOff
)

var stateNames = [...]string{"idle", "rx", "tx", "sleep", "off"}

// String implements fmt.Stringer.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Params configures a radio. The zero value is not usable; start from
// DefaultParams.
type Params struct {
	TxPowerDBm    float64 // transmit power
	RxThreshDBm   float64 // minimum power to decode a frame
	CSThreshDBm   float64 // minimum power to sense the medium busy
	NoiseFloorDBm float64 // thermal noise for SINR
	CaptureDB     float64 // SINR (dB) a frame needs to survive overlap
	BitRate       float64 // bps; drives frame airtime
}

// DefaultParams returns radio parameters calibrated so that the given
// propagation model yields the requested transmission range, with a
// carrier-sense range about twice that — the classic 250 m / 550 m
// WaveLAN ratio the paper's testbed conventions imply.
func DefaultParams(m propagation.Model, rangeMeters float64) Params {
	const tx = 24.5 // dBm ≈ 280 mW, the ns-2 WaveLAN default
	rxThresh := propagation.ThresholdFor(m, tx, rangeMeters)
	csThresh := propagation.ThresholdFor(m, tx, rangeMeters*2.2)
	return Params{
		TxPowerDBm:    tx,
		RxThreshDBm:   rxThresh,
		CSThreshDBm:   csThresh,
		NoiseFloorDBm: -101,
		CaptureDB:     10,
		BitRate:       1e6,
	}
}

// AirTime returns the on-air duration of a frame of size bytes.
func (p Params) AirTime(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / p.BitRate)
}

// Listener receives PHY indications; the MAC layer implements it.
type Listener interface {
	// OnReceive delivers a successfully decoded frame with its receive
	// power — the signal strength SSAF derives its backoff from (§3).
	OnReceive(pkt *packet.Packet, rssiDBm float64)
	// OnMediumBusy and OnMediumIdle report carrier-sense transitions.
	OnMediumBusy()
	OnMediumIdle()
	// OnTxDone reports that the frame handed to Transmit left the air.
	OnTxDone()
}

// Stats counts PHY-level events for one radio.
type Stats struct {
	TxFrames     uint64 // frames transmitted
	RxFrames     uint64 // frames delivered to the listener
	Collisions   uint64 // frames corrupted by overlapping energy
	MissedWeak   uint64 // decodable frames lost to in-progress activity
	DroppedOff   uint64 // frames that arrived while sleeping or off
	AbortedByTx  uint64 // receptions aborted by our own transmission
	AbortedByOff uint64 // receptions aborted by turning the radio off
}

// signal is one frame in flight at a particular receiver.
type signal struct {
	pkt      *packet.Packet
	powerDBm float64
	powerMW  float64
	end      sim.Time
	tracked  bool
}

// Radio is a half-duplex transceiver attached to a Channel.
type Radio struct {
	id       packet.NodeID
	params   Params
	kernel   *sim.Kernel
	channel  *Channel
	listener Listener

	// Linear-domain images of the dB thresholds, converted once at
	// construction (see initThresholds) so the per-signal hot paths —
	// carrier sensing and SINR — compare milliwatts directly instead of
	// calling log10/pow on every event.
	noiseMW      float64 // params.NoiseFloorDBm in mW
	csThreshMW   float64 // params.CSThreshDBm in mW
	captureRatio float64 // params.CaptureDB as a linear power ratio

	state     State
	inAir     []*signal
	rx        *signal
	rxCorrupt bool
	busy      bool // last carrier-sense state reported

	energy *Energy
	stats  Stats
}

// initThresholds caches the linear-domain thresholds. Called at
// construction; the cached fields depend only on receive-side
// parameters, which never change after construction (SetTxPower touches
// the transmit side only).
func (r *Radio) initThresholds() {
	r.noiseMW = propagation.DBmToMilliwatt(r.params.NoiseFloorDBm)
	r.csThreshMW = propagation.DBmToMilliwatt(r.params.CSThreshDBm)
	r.captureRatio = propagation.DBmToMilliwatt(r.params.CaptureDB)
}

// ID returns the radio's node id.
func (r *Radio) ID() packet.NodeID { return r.id }

// State returns the current transceiver state.
func (r *Radio) State() State { return r.state }

// Params returns the radio's configuration.
func (r *Radio) Params() Params { return r.params }

// Stats returns a snapshot of the radio's counters.
func (r *Radio) Stats() Stats { return r.stats }

// Energy returns the radio's energy meter.
func (r *Radio) Energy() *Energy { return r.energy }

// SetListener installs the MAC; it must be called before any traffic.
func (r *Radio) SetListener(l Listener) { r.listener = l }

// SetTxPower changes this radio's transmit power. Asymmetric powers
// create the unidirectional links whose effect on Routeless Routing §4
// discusses ("may negatively affect the efficiency, but not the
// correctness").
func (r *Radio) SetTxPower(dbm float64) {
	r.params.TxPowerDBm = dbm
	r.channel.invalidateLinks(int(r.id))
}

// On reports whether the radio can currently send or receive.
func (r *Radio) On() bool { return r.state != StateOff && r.state != StateSleep }

// CarrierBusy reports whether the medium is sensed busy: the radio is
// transmitting, locked on a frame, or total in-air power exceeds the
// carrier-sense threshold. The comparison runs in the linear domain
// (milliwatts), which is equivalent to the dB comparison because log10
// is strictly increasing.
func (r *Radio) CarrierBusy() bool {
	if r.state == StateTx || r.state == StateRx {
		return true
	}
	return r.inAirMW() >= r.csThreshMW
}

func (r *Radio) inAirMW() float64 {
	var sum float64
	for _, s := range r.inAir {
		sum += s.powerMW
	}
	return sum
}

// interferenceMW returns noise plus in-air power, excluding the frame
// under consideration.
func (r *Radio) interferenceMW(frame *signal) float64 {
	sum := r.noiseMW
	for _, s := range r.inAir {
		if s != frame {
			sum += s.powerMW
		}
	}
	return sum
}

// sinrOK checks the capture condition in the linear domain:
// signal/interference >= capture ratio, the monotone image of
// signalDB - interferenceDB >= CaptureDB.
func (r *Radio) sinrOK(frame *signal) bool {
	interf := r.interferenceMW(frame)
	if interf <= 0 {
		return true
	}
	return frame.powerMW >= interf*r.captureRatio
}

// Transmit puts a frame on the air. The caller (MAC) is responsible for
// carrier sensing; transmitting while receiving aborts the reception
// (half-duplex). Transmit panics if the radio is off, asleep, or
// already transmitting — those are MAC bugs, not channel conditions.
func (r *Radio) Transmit(pkt *packet.Packet) {
	switch r.state {
	case StateOff, StateSleep:
		panic(fmt.Sprintf("phy: %v Transmit while %v", r.id, r.state))
	case StateTx:
		panic(fmt.Sprintf("phy: %v Transmit while already transmitting", r.id))
	case StateRx:
		r.stats.AbortedByTx++
		r.rx = nil
		r.rxCorrupt = false
	}
	r.setState(StateTx)
	r.updateCarrier() // our own transmission makes the medium busy
	r.stats.TxFrames++
	pkt.From = r.id
	dur := r.params.AirTime(pkt.Size)
	r.channel.transmit(r, pkt, dur)
	r.kernel.Schedule(dur, r.txDone)
}

func (r *Radio) txDone() {
	if r.state != StateTx { // turned off mid-transmission
		return
	}
	r.setState(StateIdle)
	if r.listener != nil {
		r.listener.OnTxDone()
	}
	r.updateCarrier()
}

// signalStart is called by the channel when a frame's leading edge
// reaches this radio.
func (r *Radio) signalStart(s *signal) {
	if !r.On() {
		r.stats.DroppedOff++
		return
	}
	s.tracked = true
	r.inAir = append(r.inAir, s)
	switch r.state {
	case StateIdle:
		if s.powerDBm >= r.params.RxThreshDBm {
			if r.sinrOK(s) {
				r.rx = s
				r.rxCorrupt = false
				r.setState(StateRx)
			} else {
				r.stats.MissedWeak++
			}
		}
	case StateRx:
		if !r.sinrOK(r.rx) {
			if !r.rxCorrupt {
				r.rxCorrupt = true
				r.stats.Collisions++
			}
		}
	case StateTx:
		// Half-duplex: we hear nothing of it.
	}
	r.updateCarrier()
}

// signalEnd is called by the channel when a frame's trailing edge
// passes this radio.
func (r *Radio) signalEnd(s *signal) {
	if !s.tracked {
		return // arrived while off/asleep, never entered our air state
	}
	for i, in := range r.inAir {
		if in == s {
			r.inAir[i] = r.inAir[len(r.inAir)-1]
			r.inAir = r.inAir[:len(r.inAir)-1]
			break
		}
	}
	if r.rx == s {
		ok := !r.rxCorrupt && r.state == StateRx
		r.rx = nil
		r.rxCorrupt = false
		if r.state == StateRx {
			r.setState(StateIdle)
		}
		if ok {
			r.stats.RxFrames++
			if r.listener != nil {
				r.listener.OnReceive(s.pkt, s.powerDBm)
			}
		}
	}
	r.updateCarrier()
}

func (r *Radio) updateCarrier() {
	busy := r.CarrierBusy()
	if busy == r.busy || r.listener == nil {
		r.busy = busy
		return
	}
	r.busy = busy
	if busy {
		r.listener.OnMediumBusy()
	} else {
		r.listener.OnMediumIdle()
	}
}

// TurnOff models a transceiver failure or a deliberate power-down. Any
// reception in progress is lost, in-flight signals are forgotten, and a
// transmission in progress is truncated (receivers of it will still
// decode it — the channel does not model mid-air truncation; the
// failure process operates at packet granularity, matching the paper's
// duty-cycle failure definition).
func (r *Radio) TurnOff() { r.powerDown(StateOff) }

// Sleep enters the low-power listening-off state; semantics match
// TurnOff but energy accounting differs.
func (r *Radio) Sleep() { r.powerDown(StateSleep) }

func (r *Radio) powerDown(s State) {
	if r.state == StateOff || r.state == StateSleep {
		r.setState(s)
		return
	}
	if r.rx != nil {
		r.stats.AbortedByOff++
		r.rx = nil
		r.rxCorrupt = false
	}
	for _, in := range r.inAir {
		in.tracked = false
	}
	r.inAir = r.inAir[:0]
	r.setState(s)
	r.busy = false
}

// TurnOn restores the radio to idle. Frames whose leading edge passed
// while the radio was off are not heard.
func (r *Radio) TurnOn() {
	if r.On() {
		return
	}
	r.setState(StateIdle)
	r.updateCarrier()
}

func (r *Radio) setState(s State) {
	if r.energy != nil {
		r.energy.Transition(r.kernel.Now(), r.state, s)
	}
	r.state = s
}
