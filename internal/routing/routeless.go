package routing

import (
	"routeless/internal/core"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/sim"
)

// RoutelessConfig parameterizes the protocol. Zero fields take the
// noted defaults.
type RoutelessConfig struct {
	// Lambda is the backoff quantum λ of the §4.1 equation; default 10 ms.
	Lambda sim.Time
	// RelayTimeout is how long a relayer (acting as arbiter) waits to
	// overhear the next hop before retransmitting; default 200 ms.
	RelayTimeout sim.Time
	// MaxRelayRetries bounds arbiter retransmissions; default 2.
	MaxRelayRetries int
	// DiscoveryBackoff is the counter-1 flood backoff used for path
	// discovery packets; default 10 ms.
	DiscoveryBackoff sim.Time
	// DiscoveryTimeout is how long a source waits for a path reply
	// before re-flooding; default 2 s.
	DiscoveryTimeout sim.Time
	// MaxDiscoveryRetries bounds re-floods; default 3.
	MaxDiscoveryRetries int
	// TTL bounds every packet's hop travel; default 32.
	TTL int
	// DataSize is the payload bytes of data packets; default 512.
	DataSize int
	// StateTTL is the relay-state garbage-collection age; default 10 s.
	StateTTL sim.Time
	// SignalTieBreak makes the within-band tie-break signal-strength
	// aware (core.GradientSignal) — the metric combination the paper's
	// conclusion proposes — using the SignalMinDBm/SignalMaxDBm span
	// below. Off by default: deterministic far-preference clusters all
	// range-edge candidates at near-zero delay, which *causes* the
	// simultaneous-announcement collisions §2 warns about (measured in
	// the ABL2/ABL4 ablations); the paper's uniform draw spreads them.
	SignalTieBreak bool
	// SignalMinDBm/SignalMaxDBm span the receive powers mapped onto the
	// within-band delay; defaults match the free-space 250 m
	// calibration (decode threshold … power at 25 m).
	SignalMinDBm, SignalMaxDBm float64
	// RedundantAcks sends each acknowledgement twice; more robust to
	// ACK loss but measurably more traffic. With the path budget and
	// gradient damping in place, single ACKs suffice (ablation knob).
	RedundantAcks bool
	// PathMargin bounds every data/reply packet's TTL to the known
	// distance to its target plus this margin. The budget confines
	// election-failure debris to the source–target ellipse: any copy
	// that cannot reach the target within its remaining budget is not
	// worth relaying. Default 2.
	PathMargin int
	// HopSlack is how much a copy's traveled hop count may exceed the
	// receiver's table distance to the packet's origin before the
	// receiver refuses to relay it (detour check); default 1. Higher
	// values tolerate longer detours around failed nodes at the cost
	// of slower suppression of election-failure cascades.
	HopSlack int
	// PlainDiscovery disables duplicate-cancellation on discovery
	// forwards. By default a node whose discovery rebroadcast is still
	// pending (or queued) drops it upon overhearing a duplicate — the
	// counter-based suppression of Tseng et al. with C=1, which is what
	// lets Routeless Routing use "much fewer route request packets"
	// than AODV's plain flood (§4.3).
	PlainDiscovery bool
}

func (c RoutelessConfig) withDefaults() RoutelessConfig {
	if c.Lambda == 0 {
		// λ must exceed the suppression latency (next-hop relay or ACK
		// reaching the losers, ≈5–10 ms with queueing) so that nodes on
		// the wrong side of the gradient — whose delay is at least λ —
		// are reliably cancelled before their timers fire (§4.1).
		c.Lambda = 50e-3
	}
	if c.RelayTimeout == 0 {
		// Must exceed worst-case backoff plus MAC queueing under load;
		// a short timeout makes arbiters retransmit into congestion,
		// amplifying it.
		c.RelayTimeout = 200e-3
	}
	if c.MaxRelayRetries == 0 {
		c.MaxRelayRetries = 2
	}
	if c.DiscoveryBackoff == 0 {
		c.DiscoveryBackoff = 10e-3
	}
	if c.DiscoveryTimeout == 0 {
		c.DiscoveryTimeout = 2
	}
	if c.MaxDiscoveryRetries == 0 {
		c.MaxDiscoveryRetries = 3
	}
	if c.TTL == 0 {
		c.TTL = 32
	}
	if c.DataSize == 0 {
		c.DataSize = packet.SizeData
	}
	if c.StateTTL == 0 {
		c.StateTTL = 10
	}
	if c.HopSlack == 0 {
		c.HopSlack = 1
	}
	if c.PathMargin == 0 {
		c.PathMargin = 2
	}
	if c.SignalMinDBm == 0 {
		c.SignalMinDBm = -55.1 // free-space decode threshold at 250 m
	}
	if c.SignalMaxDBm == 0 {
		c.SignalMaxDBm = -33.2 // free-space receive power at 25 m
	}
	return c
}

// RoutelessStats is the plain-uint64 snapshot view of one node's
// counters.
type RoutelessStats struct {
	DataSent            uint64
	DataDelivered       uint64
	DiscoveriesSent     uint64
	DiscoveryForwards   uint64
	DiscoveryCancelled  uint64
	DupDiscovery        uint64
	RepliesSent         uint64
	RepliesReceived     uint64
	Relays              uint64 // reply/data forwards won by election
	Retransmissions     uint64 // arbiter retransmissions
	RelayGiveUps        uint64
	CancelledByOverhear uint64 // backoffs cancelled by a downstream copy
	CancelledByAck      uint64 // backoffs cancelled by an ACK
	ArbiterAcks         uint64 // ACKs sent after overhearing the next hop
	TargetAcks          uint64 // ACKs sent as the packet's target
	ReAcks              uint64 // retained for API stability; unused since the detour check
	StaleDrops          uint64 // copies refused by the detour check
	Abstains            uint64 // elections skipped for lack of a gradient
	TTLDrops            uint64
	DroppedNoRoute      uint64 // data dropped after discovery gave up
	Repairs             uint64 // relays recovered after arbiter retransmission
}

// routelessCounters is the live counter storage behind RoutelessStats.
type routelessCounters struct {
	dataSent            metrics.Counter
	dataDelivered       metrics.Counter
	discoveriesSent     metrics.Counter
	discoveryForwards   metrics.Counter
	discoveryCancelled  metrics.Counter
	dupDiscovery        metrics.Counter
	repliesSent         metrics.Counter
	repliesReceived     metrics.Counter
	relays              metrics.Counter
	retransmissions     metrics.Counter
	relayGiveUps        metrics.Counter
	cancelledByOverhear metrics.Counter
	cancelledByAck      metrics.Counter
	arbiterAcks         metrics.Counter
	targetAcks          metrics.Counter
	reAcks              metrics.Counter
	staleDrops          metrics.Counter
	abstains            metrics.Counter
	ttlDrops            metrics.Counter
	droppedNoRoute      metrics.Counter
	repairs             metrics.Counter

	// repairLatency spans a relay's first arbiter retransmission to the
	// evidence that the packet moved again (overheard downstream copy or
	// ACK) — Routeless Routing's route-repair recovery metric.
	repairLatency metrics.Histogram
}

type relayPhase uint8

const (
	phasePending relayPhase = iota // backoff armed, may be cancelled
	phaseQueued                    // won the election; frame in the MAC queue
	phaseRelayed                   // frame left the air; arbiter duty active
	phaseDone                      // acked, superseded, or given up
)

// relayState is the per-logical-packet election state machine:
// Pending → Queued → Relayed → Done. Cancellation can strike in
// Pending (stop the timer) and in Queued (withdraw the frame from the
// MAC queue) — §2's backoff cancellation covers the whole pre-air path.
type relayState struct {
	phase     relayPhase
	armedHop  int            // hop count of the copy that armed our backoff
	armedFrom packet.NodeID  // transmitter of that copy (our arbiter)
	txHop     int            // hop count we (will) transmit with
	fwd       *packet.Packet // master copy for (re)transmission
	inflight  *packet.Packet // the exact frame handed to the MAC
	timer     *sim.Timer
	retries   int
	reAcks    int
	created   sim.Time

	// repairStart is when the first retransmission for this relay fired;
	// zero while no repair is in progress.
	repairStart sim.Time
}

// discForward tracks one pending discovery rebroadcast so that a
// duplicate overheard in time can cancel it (counter-1 suppression).
type discForward struct {
	timer   *sim.Timer
	fwd     *packet.Packet
	queued  bool
	created sim.Time
}

// Routeless is one node's Routeless Routing instance (§4.1). It keeps
// no routes: every reply/data forwarding step is a local leader
// election with the hop-gradient backoff, the transmitting node acting
// as arbiter for the next hop.
type Routeless struct {
	cfg RoutelessConfig
	n   *node.Node

	table       *ActiveTable
	seq         uint32
	floodDedup  *packet.DedupCache
	consumed    *packet.DedupCache
	relays      map[packet.FlowKey]*relayState
	discPending map[packet.FlowKey]*discForward
	discovering discoverySet

	policy     core.BackoffPolicy // hop gradient for reply/data
	discPolicy core.BackoffPolicy // uniform for discovery floods

	sweep *sim.Ticker

	// OnRelay observes every reply/data transmission this node makes
	// (origination, election win, or retransmission) — the Figure 2
	// trace hook.
	OnRelay func(pkt *packet.Packet)

	// OnEvent, if set, observes the election state machine: "arm",
	// "abstain", "stale", "win", "cancel-oh", "cancel-ack", "dequeue",
	// "retransmit", "giveup", "ack-tx", "consume". For debugging and
	// protocol studies.
	OnEvent func(ev string, key packet.FlowKey, hop int)

	stats routelessCounters
}

// NewRouteless builds an instance; install with Network.Install.
func NewRouteless(cfg RoutelessConfig) *Routeless {
	cfg = cfg.withDefaults()
	var policy core.BackoffPolicy
	if cfg.SignalTieBreak {
		policy = core.GradientSignal{
			Lambda: cfg.Lambda,
			MinDBm: cfg.SignalMinDBm, MaxDBm: cfg.SignalMaxDBm,
			JitterFrac: 0.25,
		}
	} else {
		policy = core.HopGradient{Lambda: cfg.Lambda}
	}
	return &Routeless{
		cfg:         cfg,
		table:       NewActiveTable(),
		floodDedup:  packet.NewDedupCache(8192),
		consumed:    packet.NewDedupCache(8192),
		relays:      make(map[packet.FlowKey]*relayState),
		discPending: make(map[packet.FlowKey]*discForward),
		discovering: make(discoverySet),
		policy:      policy,
		discPolicy:  core.Uniform{Max: cfg.DiscoveryBackoff},
	}
}

// Start implements node.Protocol.
func (r *Routeless) Start(n *node.Node) {
	r.n = n
	r.sweep = sim.NewTicker(n.Kernel, 5, r.gc)
	r.sweep.StartAfter(sim.Time(5 + n.Rng.Float64()))
}

// Stats returns the node's counters.
func (r *Routeless) Stats() RoutelessStats {
	s := &r.stats
	return RoutelessStats{
		DataSent:            s.dataSent.Value(),
		DataDelivered:       s.dataDelivered.Value(),
		DiscoveriesSent:     s.discoveriesSent.Value(),
		DiscoveryForwards:   s.discoveryForwards.Value(),
		DiscoveryCancelled:  s.discoveryCancelled.Value(),
		DupDiscovery:        s.dupDiscovery.Value(),
		RepliesSent:         s.repliesSent.Value(),
		RepliesReceived:     s.repliesReceived.Value(),
		Relays:              s.relays.Value(),
		Retransmissions:     s.retransmissions.Value(),
		RelayGiveUps:        s.relayGiveUps.Value(),
		CancelledByOverhear: s.cancelledByOverhear.Value(),
		CancelledByAck:      s.cancelledByAck.Value(),
		ArbiterAcks:         s.arbiterAcks.Value(),
		TargetAcks:          s.targetAcks.Value(),
		ReAcks:              s.reAcks.Value(),
		StaleDrops:          s.staleDrops.Value(),
		Abstains:            s.abstains.Value(),
		TTLDrops:            s.ttlDrops.Value(),
		DroppedNoRoute:      s.droppedNoRoute.Value(),
		Repairs:             s.repairs.Value(),
	}
}

// RegisterMetrics registers the protocol counters; per-node sources sum
// into network-wide rr.* series.
func (r *Routeless) RegisterMetrics(reg *metrics.Registry) {
	reg.Observe("rr.data_sent", &r.stats.dataSent)
	reg.Observe("rr.data_delivered", &r.stats.dataDelivered)
	reg.Observe("rr.discoveries_sent", &r.stats.discoveriesSent)
	reg.Observe("rr.discovery_forwards", &r.stats.discoveryForwards)
	reg.Observe("rr.discovery_cancelled", &r.stats.discoveryCancelled)
	reg.Observe("rr.dup_discovery", &r.stats.dupDiscovery)
	reg.Observe("rr.replies_sent", &r.stats.repliesSent)
	reg.Observe("rr.replies_received", &r.stats.repliesReceived)
	reg.Observe("rr.relays", &r.stats.relays)
	reg.Observe("rr.retransmissions", &r.stats.retransmissions)
	reg.Observe("rr.relay_give_ups", &r.stats.relayGiveUps)
	reg.Observe("rr.cancelled_by_overhear", &r.stats.cancelledByOverhear)
	reg.Observe("rr.cancelled_by_ack", &r.stats.cancelledByAck)
	reg.Observe("rr.arbiter_acks", &r.stats.arbiterAcks)
	reg.Observe("rr.target_acks", &r.stats.targetAcks)
	reg.Observe("rr.re_acks", &r.stats.reAcks)
	reg.Observe("rr.stale_drops", &r.stats.staleDrops)
	reg.Observe("rr.abstains", &r.stats.abstains)
	reg.Observe("rr.ttl_drops", &r.stats.ttlDrops)
	reg.Observe("rr.dropped_no_route", &r.stats.droppedNoRoute)
	reg.Observe("rr.repairs", &r.stats.repairs)
	reg.ObserveHistogram("rr.repair_latency_s", &r.stats.repairLatency)
}

// repairDone closes an open repair window on st: the packet provably
// moved again after at least one arbiter retransmission. No-op when no
// repair was in progress.
func (r *Routeless) repairDone(st *relayState) {
	if st.repairStart == 0 {
		return
	}
	r.stats.repairs.Inc()
	r.stats.repairLatency.Observe(float64(r.n.Kernel.Now() - st.repairStart))
	st.repairStart = 0
}

func (r *Routeless) event(ev string, key packet.FlowKey, hop int) {
	if r.OnEvent != nil {
		r.OnEvent(ev, key, hop)
	}
}

// Table exposes the active node table (read-mostly; used by tests and
// experiment instrumentation).
func (r *Routeless) Table() *ActiveTable { return r.table }

// Send implements node.Protocol: originate data toward target,
// discovering a gradient first when none exists.
func (r *Routeless) Send(target packet.NodeID, size int) {
	if size == 0 {
		size = r.cfg.DataSize
	}
	now := r.n.Kernel.Now()
	if target == r.n.ID {
		r.stats.dataSent.Inc()
		r.stats.dataDelivered.Inc()
		r.n.Deliver(&packet.Packet{Kind: packet.KindData, Origin: r.n.ID, Target: target, Size: size, CreatedAt: now})
		return
	}
	if h := r.table.Hops(target); h >= 0 {
		r.sendData(target, size, now)
		return
	}
	d, started := r.discovering.ensure(target, r.n.Kernel, func() { r.discoveryTimeout(target) })
	if started {
		r.floodDiscovery(target)
		d.timer.Reset(r.cfg.DiscoveryTimeout)
	}
	d.queue = append(d.queue, pendingData{size: size, created: now})
}

// pathBudget converts a known target distance into a TTL.
func (r *Routeless) pathBudget(h int) int {
	b := h + r.cfg.PathMargin
	if b > r.cfg.TTL {
		b = r.cfg.TTL
	}
	return b
}

func (r *Routeless) nextSeq() uint32 {
	r.seq++
	return r.seq
}

// sendData originates one data packet; the source plays arbiter for the
// first hop.
func (r *Routeless) sendData(target packet.NodeID, size int, created sim.Time) {
	h := r.table.Hops(target)
	pkt := &packet.Packet{
		Kind: packet.KindData, To: packet.Broadcast,
		Origin: r.n.ID, Target: target, Seq: r.nextSeq(),
		HopCount: 1, ExpectedHops: h - 1,
		TTL: r.pathBudget(h), Size: size, CreatedAt: created,
	}
	r.stats.dataSent.Inc()
	r.originate(pkt)
}

// sendReply answers a path discovery (§4.1): expected hop count is the
// table distance to the source minus one.
func (r *Routeless) sendReply(source packet.NodeID) {
	h := r.table.Hops(source)
	if h < 0 {
		return // discovery observation failed somehow; next retry will fix
	}
	pkt := &packet.Packet{
		Kind: packet.KindReply, To: packet.Broadcast,
		Origin: r.n.ID, Target: source, Seq: r.nextSeq(),
		HopCount: 1, ExpectedHops: h - 1,
		TTL: r.pathBudget(h), Size: packet.SizeControl, CreatedAt: r.n.Kernel.Now(),
	}
	r.stats.repliesSent.Inc()
	r.originate(pkt)
}

// originate queues a reply/data packet from its origin; arbiter duty
// for the first hop starts when the frame actually leaves the air
// (OnSent).
func (r *Routeless) originate(pkt *packet.Packet) {
	key := pkt.Key()
	st := &relayState{
		phase:   phaseQueued,
		txHop:   pkt.HopCount,
		fwd:     pkt.Clone(),
		created: r.n.Kernel.Now(),
	}
	st.timer = sim.NewTimer(r.n.Kernel, func() { r.relayTimeout(key) })
	r.relays[key] = st
	r.enqueueRelay(st, 0)
}

// enqueueRelay hands the state's master copy to the MAC.
func (r *Routeless) enqueueRelay(st *relayState, priority float64) {
	st.inflight = st.fwd.Clone()
	if r.OnRelay != nil {
		r.OnRelay(st.inflight)
	}
	r.n.MAC.Enqueue(st.inflight, priority)
}

// floodDiscovery starts (or retries) a counter-1 flood for target.
func (r *Routeless) floodDiscovery(target packet.NodeID) {
	pkt := &packet.Packet{
		Kind: packet.KindDiscovery, To: packet.Broadcast,
		Origin: r.n.ID, Target: target, Seq: r.nextSeq(),
		HopCount: 1, TTL: r.cfg.TTL,
		Size: packet.SizeControl, CreatedAt: r.n.Kernel.Now(),
	}
	r.floodDedup.Seen(pkt.Key())
	r.stats.discoveriesSent.Inc()
	r.n.MAC.Enqueue(pkt, 0)
}

func (r *Routeless) discoveryTimeout(target packet.NodeID) {
	// The reply may have been lost while the gradient was still learned
	// passively (the table observes every overheard packet from the
	// target). If a gradient exists now, the discovery has effectively
	// succeeded: flush the queue through the normal send path instead of
	// re-flooding or mis-counting the data as routeless.
	if r.table.Hops(target) >= 0 {
		for _, pd := range r.discovering.succeed(target) {
			r.sendData(target, pd.size, pd.created)
		}
		return
	}
	d, retry := r.discovering.step(target, r.cfg.MaxDiscoveryRetries)
	if d == nil {
		return
	}
	if !retry {
		r.stats.droppedNoRoute.Add(uint64(len(d.queue)))
		return
	}
	r.floodDiscovery(target)
	d.timer.Reset(r.cfg.DiscoveryTimeout)
}

// OnDeliver implements node.Protocol.
func (r *Routeless) OnDeliver(pkt *packet.Packet, rssiDBm float64) {
	switch pkt.Kind {
	case packet.KindDiscovery:
		r.handleDiscovery(pkt)
	case packet.KindReply, packet.KindData:
		r.handleRelayPacket(pkt, rssiDBm)
	case packet.KindAck:
		r.handleAck(pkt)
	}
}

func (r *Routeless) handleDiscovery(pkt *packet.Packet) {
	now := r.n.Kernel.Now()
	r.table.Observe(pkt.Origin, pkt.HopCount, pkt.Seq, now)
	key := pkt.Key()
	if r.floodDedup.Seen(key) {
		r.stats.dupDiscovery.Inc()
		if !r.cfg.PlainDiscovery {
			// Counter-1 suppression: a duplicate overheard before our
			// rebroadcast reaches the air cancels it.
			if df, ok := r.discPending[key]; ok {
				cancelled := false
				if df.queued {
					cancelled = r.n.MAC.Dequeue(df.fwd)
				} else {
					df.timer.Stop()
					cancelled = true
				}
				if cancelled {
					delete(r.discPending, key)
					r.stats.discoveryCancelled.Inc()
				}
			}
		}
		return
	}
	if pkt.Target == r.n.ID {
		r.sendReply(pkt.Origin)
		return
	}
	if pkt.TTL <= 1 {
		r.stats.ttlDrops.Inc()
		return
	}
	backoff, _ := r.discPolicy.Backoff(core.Context{Rand: r.n.Rng})
	fwd := pkt.Clone()
	fwd.To = packet.Broadcast
	fwd.HopCount++
	fwd.TTL--
	df := &discForward{fwd: fwd, created: now}
	df.timer = sim.NewTimer(r.n.Kernel, func() {
		df.queued = true
		r.stats.discoveryForwards.Inc()
		r.n.MAC.Enqueue(fwd, float64(backoff))
	})
	r.discPending[key] = df
	df.timer.Reset(backoff)
}

func (r *Routeless) handleRelayPacket(pkt *packet.Packet, rssiDBm float64) {
	now := r.n.Kernel.Now()
	key := pkt.Key()

	// Detour check BEFORE folding the copy into the table: a fresh
	// copy whose traveled distance far exceeds our known shortest
	// distance to its origin is the debris of a failed election (a
	// loser that missed both the winning relay and the ACK and
	// re-spawned the packet). Its actual-hop-count field is circuitous
	// garbage — observing it would overwrite the good gradient entry
	// (the copy carries a newer sequence number), corrupting every
	// later election. Refuse it entirely.
	if r.relays[key] == nil && pkt.Target != r.n.ID {
		if ho := r.table.Hops(pkt.Origin); ho >= 0 && pkt.HopCount > ho+r.cfg.HopSlack {
			r.stats.staleDrops.Inc()
			r.event("stale", key, pkt.HopCount)
			return
		}
	}
	r.table.Observe(pkt.Origin, pkt.HopCount, pkt.Seq, now)

	if pkt.Target == r.n.ID {
		if !r.consumed.Seen(key) {
			switch pkt.Kind {
			case packet.KindData:
				r.stats.dataDelivered.Inc()
				r.event("consume", key, pkt.HopCount)
				r.n.Deliver(pkt)
			case packet.KindReply:
				r.stats.repliesReceived.Inc()
				r.routeEstablished(pkt.Origin)
			}
		}
		// ACK on every copy: a retransmission means our previous ACK
		// was missed.
		r.stats.targetAcks.Inc()
		r.sendAck(key)
		return
	}

	st := r.relays[key]
	if st == nil {
		r.armRelay(pkt, rssiDBm, key, now)
		return
	}
	switch st.phase {
	case phasePending:
		if pkt.HopCount > st.armedHop ||
			(pkt.HopCount == st.armedHop && pkt.From != st.armedFrom) {
			// Someone at or ahead of our ring relayed this packet: we
			// lost the election (§4.1 cancellation case (i)). An
			// equal-hop copy from the node we armed from is the arbiter
			// retransmitting — then we keep competing; from anyone else
			// it is a sibling's relay carrying the packet onward.
			st.timer.Stop()
			st.phase = phaseDone
			r.stats.cancelledByOverhear.Inc()
			r.event("cancel-oh", key, pkt.HopCount)
		}
	case phaseQueued:
		if pkt.HopCount >= st.txHop ||
			(pkt.HopCount == st.armedHop && pkt.From != st.armedFrom) {
			// A node at or beyond our level transmitted while our frame
			// sat in the MAC queue: withdraw it if it has not reached
			// the air yet.
			if r.n.MAC.Dequeue(st.inflight) {
				st.phase = phaseDone
				r.stats.cancelledByOverhear.Inc()
				r.event("dequeue", key, pkt.HopCount)
				if pkt.HopCount > st.txHop {
					// Only possible for a queued retransmission: our
					// earlier copy did get relayed downstream — finish
					// the arbiter duty with an ACK.
					r.repairDone(st)
					r.stats.arbiterAcks.Inc()
					r.sendAck(key)
				}
			}
			// Dequeue failure means the frame is on the air; OnSent
			// will promote us to Relayed and the usual rules apply.
		}
	case phaseRelayed:
		if pkt.HopCount > st.txHop {
			// Our transmission was relayed onward: arbiter duty —
			// acknowledge so nodes that missed the relay stand down.
			st.timer.Stop()
			st.phase = phaseDone
			r.repairDone(st)
			r.stats.arbiterAcks.Inc()
			r.event("ack-tx", key, pkt.HopCount)
			r.sendAck(key)
		}
	case phaseDone:
		// Stale traffic for a settled packet; nothing to do. (Nodes
		// that never saw the packet are protected from joining a
		// runaway copy by the detour check in armRelay.)
	}
}

// armRelay enters the election for a freshly seen reply/data packet.
func (r *Routeless) armRelay(pkt *packet.Packet, rssiDBm float64, key packet.FlowKey, now sim.Time) {
	if pkt.TTL <= 1 {
		r.stats.ttlDrops.Inc()
		return
	}
	hops := r.table.Hops(pkt.Target)
	// Budget check: relaying is pointless if the target cannot be
	// reached within the packet's remaining hop budget.
	if hops >= 0 && hops >= pkt.TTL {
		r.stats.ttlDrops.Inc()
		r.event("budget", key, pkt.HopCount)
		return
	}
	backoff, ok := r.policy.Backoff(core.Context{
		Self:         r.n.ID,
		RSSIdBm:      rssiDBm,
		HopsToTarget: hops,
		ExpectedHops: pkt.ExpectedHops,
		Rand:         r.n.Rng,
	})
	if !ok {
		r.stats.abstains.Inc()
		r.event("abstain", key, pkt.HopCount)
		return
	}
	r.event("arm", key, pkt.HopCount)
	fwd := pkt.Clone()
	fwd.To = packet.Broadcast
	fwd.HopCount++
	fwd.TTL--
	fwd.ExpectedHops = hops - 1
	st := &relayState{
		phase:     phasePending,
		armedHop:  pkt.HopCount,
		armedFrom: pkt.From,
		fwd:       fwd,
		created:   now,
	}
	st.timer = sim.NewTimer(r.n.Kernel, func() { r.relayWon(key, float64(backoff)) })
	r.relays[key] = st
	st.timer.Reset(backoff)
}

// relayWon fires when our backoff expired uncancelled: we are the local
// leader for this hop. Queue the frame; arbiter duty begins when it
// leaves the air.
func (r *Routeless) relayWon(key packet.FlowKey, priority float64) {
	st := r.relays[key]
	if st == nil || st.phase != phasePending {
		return
	}
	st.phase = phaseQueued
	st.txHop = st.fwd.HopCount
	st.timer = sim.NewTimer(r.n.Kernel, func() { r.relayTimeout(key) })
	r.stats.relays.Inc()
	r.event("win", key, st.txHop)
	r.enqueueRelay(st, priority)
}

// OnSent implements node.Protocol: when a queued relay frame leaves the
// air, arbiter duty starts (overhear the next hop or retransmit).
func (r *Routeless) OnSent(pkt *packet.Packet) {
	if pkt.Kind != packet.KindReply && pkt.Kind != packet.KindData {
		return
	}
	st := r.relays[pkt.Key()]
	if st == nil || st.phase != phaseQueued || st.inflight != pkt {
		return
	}
	st.phase = phaseRelayed
	st.timer.Reset(r.cfg.RelayTimeout)
}

// relayTimeout is the arbiter's "rebroadcast not overheard" path: §4.1
// "If the rebroadcast is not overheard within a certain time, the
// destination node will retransmit the same packet."
func (r *Routeless) relayTimeout(key packet.FlowKey) {
	st := r.relays[key]
	if st == nil || st.phase != phaseRelayed {
		return
	}
	st.retries++
	if st.retries > r.cfg.MaxRelayRetries {
		st.phase = phaseDone
		r.stats.relayGiveUps.Inc()
		r.event("giveup", key, st.txHop)
		return
	}
	r.stats.retransmissions.Inc()
	r.event("retransmit", key, st.txHop)
	if st.repairStart == 0 {
		st.repairStart = r.n.Kernel.Now()
	}
	st.phase = phaseQueued
	r.enqueueRelay(st, 0)
}

func (r *Routeless) handleAck(pkt *packet.Packet) {
	kind, ok := pkt.Payload.(packet.Kind)
	if !ok {
		return
	}
	key := packet.FlowKey{Origin: pkt.Origin, Kind: kind, Seq: pkt.Seq}
	st := r.relays[key]
	if st == nil {
		// Immunization: we heard the packet was settled before ever
		// seeing a copy of it. Remember that, so a late (possibly
		// circuitous) copy arriving afterwards cannot recruit us.
		r.relays[key] = &relayState{
			phase:   phaseDone,
			created: r.n.Kernel.Now(),
			timer:   sim.NewTimer(r.n.Kernel, func() {}),
		}
		return
	}
	switch st.phase {
	case phasePending:
		// §4.1 cancellation case (ii): an ACK means the packet was
		// relayed (or arrived); stand down.
		st.timer.Stop()
		st.phase = phaseDone
		r.stats.cancelledByAck.Inc()
		r.event("cancel-ack", key, st.armedHop)
	case phaseQueued:
		if r.n.MAC.Dequeue(st.inflight) {
			st.phase = phaseDone
			r.repairDone(st)
			r.stats.cancelledByAck.Inc()
		}
	case phaseRelayed:
		st.timer.Stop()
		st.phase = phaseDone
		r.repairDone(st)
	}
}

func (r *Routeless) sendAck(key packet.FlowKey) {
	// The acknowledgement is sent twice with independent jitter: a
	// single ACK lost to a collision leaves election losers armed, and
	// each escaped loser re-floods the packet — far costlier than one
	// redundant 24-byte frame. Jitter de-synchronizes acknowledgements
	// from neighboring arbiters (they tend to fire on the same
	// overheard relay); negative priority then makes them pre-empt
	// queued relays — suppression must outrun competing backoff timers.
	for _, window := range r.ackWindows() {
		jitter := sim.Time(r.n.Rng.Float64() * window)
		r.n.Kernel.Schedule(jitter, func() {
			if !r.n.Up() {
				return
			}
			r.n.MAC.Enqueue(&packet.Packet{
				Kind: packet.KindAck, To: packet.Broadcast,
				Origin: key.Origin, Seq: key.Seq,
				Payload: key.Kind, Size: packet.SizeAck,
			}, -1)
		})
	}
}

// ackWindows returns the jitter windows for acknowledgement copies.
func (r *Routeless) ackWindows() []float64 {
	if r.cfg.RedundantAcks {
		return []float64{2e-3, 8e-3}
	}
	return []float64{2e-3}
}

// routeEstablished flushes data queued behind a discovery once the path
// reply arrives.
func (r *Routeless) routeEstablished(target packet.NodeID) {
	for _, pd := range r.discovering.succeed(target) {
		r.sendData(target, pd.size, pd.created)
	}
}

// gc drops settled or ancient relay and discovery state.
func (r *Routeless) gc() {
	now := r.n.Kernel.Now()
	for key, st := range r.relays {
		age := now - st.created
		if (st.phase == phaseDone && age > 2) || age > r.cfg.StateTTL {
			st.timer.Stop()
			delete(r.relays, key)
		}
	}
	for key, df := range r.discPending {
		if now-df.created > r.cfg.StateTTL {
			df.timer.Stop()
			delete(r.discPending, key)
		}
	}
}

// OnUnicastFailed implements node.Protocol; Routeless Routing never
// unicasts, so this cannot fire.
func (r *Routeless) OnUnicastFailed(pkt *packet.Packet) {}
