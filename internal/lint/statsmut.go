package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatsMut forbids direct mutation (x.Field++, x.Field += n, …) of
// fields on *Stats-named struct types outside tests. The migrated
// layers count through metrics.Counter cells registered with the
// network registry; their Stats() structs are read-only views built
// from those cells. A stray increment on a view field is a counter the
// registry never sees — it silently breaks snapshot/journal
// completeness and the conservation laws, which is exactly the class of
// drift the drop/abort accounting audit cleaned up.
//
// The rule applies to internal/ and cmd/ code. internal/metrics and
// internal/stats are exempt: they are the mutation primitives
// themselves (Counter, Welford, Meter).
var StatsMut = &Analyzer{
	Name: "statsmut",
	Doc:  "forbid direct mutation of Stats-view fields; count through metrics.Counter",
	Run:  runStatsMut,
}

func runStatsMut(p *Pass) {
	if !p.InInternal() && !p.InCmd() {
		return
	}
	if strings.HasSuffix(p.Path, "internal/metrics") || strings.HasSuffix(p.Path, "internal/stats") {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.IncDecStmt:
				reportStatsField(p, st.X, st.TokPos, st.Tok.String())
			case *ast.AssignStmt:
				// Compound assignment only: plain = on a local copy of a
				// view is harmless (the copy dies), while += / -= / |= on
				// one is the uncounted-counter pattern this rule exists for.
				if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					reportStatsField(p, lhs, st.TokPos, st.Tok.String())
				}
			}
			return true
		})
	}
}

// reportStatsField flags e when it selects a field on a value whose
// named type ends in "Stats".
func reportStatsField(p *Pass, e ast.Expr, pos token.Pos, op string) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "Stats") {
		return
	}
	p.Reportf(pos, "%s on %s.%s mutates a Stats view the metrics registry cannot see; count through a registered metrics.Counter instead",
		op, named.Obj().Name(), sel.Sel.Name)
}
