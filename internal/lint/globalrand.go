package lint

import (
	"go/ast"
	"go/types"
)

// randPackages are the math/rand flavors whose package-level
// convenience functions draw from a process-global, seed-unstable
// source.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors are the package-level functions that build an
// explicitly seeded generator; they are the sanctioned doorway (via
// internal/rng or Kernel.Rand).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// GlobalRand enforces seed-derived randomness in two layers.
//
// The syntactic core forbids package-level math/rand functions
// (rand.Float64, rand.Intn, rand.Seed, ...) everywhere in the
// repository: draws from the global source depend on process-wide call
// order — one extra consumer anywhere perturbs every later draw — and
// rand.Seed mutates shared state.
//
// The flow-aware layer tracks *rand.Rand provenance through helpers,
// assignments, and returns (see taint.go), so a stream laundered
// through any number of functions is still checked against its root:
//
//   - a package-level *rand.Rand variable is itself a process-shared
//     stream (same call-order hazard as the global source) and is
//     flagged at its declaration; drawing from one through any helper
//     chain is flagged at the draw;
//   - a raw rand.New/rand.NewSource whose seed does not trace to
//     rng.Derive (or to a parameter, making it the caller's
//     obligation) is flagged at the constructor — and when a helper
//     forwards its seed parameter into the constructor, at the call
//     site that supplies a fixed seed.
//
// Accepted roots, no matter how many helpers they pass through:
// rng.New, rng.ForNode, Kernel.Rand(), and rand.New(rand.NewSource(s))
// where s derives from rng.Derive or arrives as a parameter.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid process-global math/rand and streams not rooted in seed derivation; use internal/rng streams or Kernel.Rand()",
	Run:  runGlobalRand,
}

// randCtorHomePkgs returns whether the unit is a sanctioned home for
// raw rand constructors: the stream-derivation package itself and the
// kernel (whose master stream is the seed's first consumer).
func inRandCtorHome(p *Pass) bool {
	return pathHasSuffix(p.Path, "internal/rng") || pathHasSuffix(p.Path, "internal/sim")
}

func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return len(path) > len(suffix) &&
		path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Files {
		runGlobalRandSyntactic(p, f)
		if p.Prog != nil && (p.InInternal() || p.InCmd()) && !p.IsTestFile(f.Pos()) {
			runGlobalRandFlow(p, f)
		}
	}
}

// runGlobalRandSyntactic is the original per-file rule: no
// package-level math/rand functions anywhere.
func runGlobalRandSyntactic(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath := p.PkgNameOf(sel)
		if !randPackages[pkgPath] {
			return true
		}
		obj, ok := p.Info.Uses[sel.Sel]
		if !ok {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || randConstructors[fn.Name()] {
			return true // types, vars, and seeded constructors are fine
		}
		p.Reportf(sel.Pos(), "package-level %s.%s draws from the process-global source; derive a stream with internal/rng or use Kernel.Rand()",
			pathBase(pkgPath), fn.Name())
		return true
	})
}

// runGlobalRandFlow is the interprocedural layer: package-level stream
// declarations, draws from globally rooted streams, and constructors
// fed underived seeds.
func runGlobalRandFlow(p *Pass, f *ast.File) {
	if p.Info == nil {
		return
	}
	// Package-level *rand.Rand / rand.Source declarations.
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if obj := p.Info.Defs[name]; obj != nil && globalVarKey(obj) != "" &&
					isRandValueType(obj.Type()) {
					p.Reportf(name.Pos(), "package-level %s %s is a process-shared stream: draw order couples every consumer; derive per-consumer streams with internal/rng instead",
						typeString(obj.Type()), name.Name)
				}
			}
		}
	}

	// Walk every function body of this file with provenance context.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if node := p.Prog.NodeFor(fd); node != nil {
			checkRandFlowBody(p, node)
		}
	}
}

// checkRandFlowBody reports flow violations in one function body and
// recurses into its closures.
func checkRandFlowBody(p *Pass, n *FuncNode) {
	prog := p.Prog
	env := prog.buildProvEnv(n)
	body := n.body()
	inCtorHome := inRandCtorHome(p)
	ast.Inspect(body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			if child := prog.NodeFor(lit); child != nil {
				checkRandFlowBody(p, child)
			}
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := prog.resolveCallee(n, n.Unit, call.Fun)

		// Raw constructor with an underived seed. The rng and sim
		// packages are the sanctioned homes of raw construction.
		if callee != "" && matchesAny(callee, rawRandCtors) && !inCtorHome {
			// Report only the outermost constructor of a
			// rand.New(rand.NewSource(s)) nest.
			if sum := prog.classifyCtorSeed(n, call, env); sum.kind == provRaw {
				p.Reportf(call.Pos(), "stream constructed from a fixed seed, not derived from the master seed; use rng.New/rng.ForNode or derive the seed with rng.Derive")
				return false
			}
			return false
		}

		// A helper that forwards its seed parameter into a raw
		// constructor shifts the obligation here: feeding it a fixed
		// literal builds an underived stream through the helper.
		if callee != "" {
			if _, inProg := prog.Funcs[callee]; inProg && !matchesAny(callee, sanctionedRandCtors) {
				sum := prog.RandSummary(callee)
				if sum.kind == provParam {
					if arg := argAt(call, sum.index); arg != nil {
						argT := typeOf(n.Unit, arg)
						if argT != nil && !isRandValueType(argT) {
							if s := prog.classifySeed(n, arg, env); s.kind == provRaw {
								p.Reportf(call.Pos(), "%s turns its seed argument into a random stream, and this call supplies a fixed seed; derive it with rng.Derive so the stream is a function of the master seed",
									shortID(callee))
							}
						}
					}
				}
			}
		}

		// Draws from a globally rooted stream, through any helper
		// chain.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if t := p.TypeOf(sel.X); isRandValueType(t) {
				if sum := prog.classifyRand(n, sel.X, env); sum.kind == provGlobal {
					p.Reportf(call.Pos(), "draws from package-level stream %s: shared streams make draw order load-bearing across consumers; derive a local stream with internal/rng",
						sum.key)
				}
			}
		}
		return true
	})
}
