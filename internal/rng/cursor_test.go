package rng

import "testing"

// TestTrackedStreamIdentity: a stream created through a Tracker must
// produce exactly the draws of its untracked twin — the cursor counts,
// it never perturbs. This is the property the snapshot oracle's RNG
// digest rests on.
func TestTrackedStreamIdentity(t *testing.T) {
	tr := NewTracker()
	tracked := tr.New(42, StreamTraffic, 3)
	plain := New(42, StreamTraffic, 3)
	for i := 0; i < 1000; i++ {
		if a, b := tracked.Uint64(), plain.Uint64(); a != b {
			t.Fatalf("draw %d diverged: tracked %#x, plain %#x", i, a, b)
		}
	}

	trc := NewTracker()
	trackedC := trc.ForNodeCompact(42, StreamMAC, 7)
	plainC := ForNodeCompact(42, StreamMAC, 7)
	for i := 0; i < 1000; i++ {
		if a, b := trackedC.Uint64(), plainC.Uint64(); a != b {
			t.Fatalf("compact draw %d diverged: %#x vs %#x", i, a, b)
		}
	}
}

// TestTrackerVisit: Len and Visit expose streams in creation order
// with exact draw counts and the derivation labels they were created
// under.
func TestTrackerVisit(t *testing.T) {
	tr := NewTracker()
	a := tr.New(1, StreamTraffic)
	b := tr.ForNode(1, StreamMAC, 5)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	a.Uint64()
	a.Uint64()
	a.Uint64()
	b.Uint64()

	var labels [][]uint64
	var draws []uint64
	tr.Visit(func(l []uint64, n uint64) {
		labels = append(labels, l)
		draws = append(draws, n)
	})
	if len(draws) != 2 || draws[0] != 3 || draws[1] != 1 {
		t.Fatalf("draw counts = %v, want [3 1]", draws)
	}
	if len(labels[0]) != 1 || labels[0][0] != StreamTraffic {
		t.Fatalf("stream 0 labels = %v", labels[0])
	}
	if len(labels[1]) != 2 || labels[1][0] != StreamMAC || labels[1][1] != 5+0x1000 {
		t.Fatalf("stream 1 labels = %v", labels[1])
	}
}

// TestTrackerCountsRandCalls: rand.Rand helpers that internally draw
// more than once (Float64 rejection sampling, Intn) are still counted
// exactly, because the cursor sits below rand.Rand.
func TestTrackerCountsRandCalls(t *testing.T) {
	tr := NewTracker()
	r := tr.New(9, StreamFuzz)
	for i := 0; i < 100; i++ {
		r.Float64()
		r.Intn(10)
	}
	var total uint64
	tr.Visit(func(_ []uint64, n uint64) { total = n })
	if total < 200 {
		t.Fatalf("counted %d source draws for 200 rand calls, want >= 200", total)
	}
}
