package routing

import (
	"testing"

	"routeless/internal/geo"
	"routeless/internal/node"
	"routeless/internal/packet"
	"routeless/internal/rng"
	"routeless/internal/sim"
	"routeless/internal/traffic"
)

// benchNetwork builds a mid-size field with the given protocol factory
// and runs bidirectional CBR over 5 pairs for `seconds`, returning the
// number of delivered application packets.
func benchNetwork(b *testing.B, install func(n *node.Node) node.Protocol, seconds float64) uint64 {
	b.Helper()
	nw := node.New(node.Config{
		N: 150, Rect: geo.NewRect(1100, 1100), Seed: 1, EnsureConnected: true,
	})
	nw.Install(install)
	delivered := uint64(0)
	for _, n := range nw.Nodes {
		n.OnAppReceive = func(*packet.Packet) { delivered++ }
	}
	for _, p := range traffic.RandomPairs(rng.New(1, rng.StreamTraffic), 150, 5) {
		traffic.NewCBR(nw.Nodes[p.Src], p.Dst, 0.5, 64).Start()
		traffic.NewCBR(nw.Nodes[p.Dst], p.Src, 0.5, 64).Start()
	}
	nw.Run(sim.Time(seconds))
	return delivered
}

// BenchmarkRoutelessSteadyState measures the full Routeless stack under
// 10 CBR flows for 10 simulated seconds per iteration.
func BenchmarkRoutelessSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := benchNetwork(b, func(n *node.Node) node.Protocol {
			return NewRouteless(RoutelessConfig{})
		}, 10)
		b.ReportMetric(float64(d), "delivered")
	}
}

// BenchmarkAODVSteadyState is the same workload through AODV.
func BenchmarkAODVSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := benchNetwork(b, func(n *node.Node) node.Protocol {
			return NewAODV(AODVConfig{NoHello: true})
		}, 10)
		b.ReportMetric(float64(d), "delivered")
	}
}

// BenchmarkActiveTableObserve measures the passive-listening hot path.
func BenchmarkActiveTableObserve(b *testing.B) {
	t := NewActiveTable()
	for i := 0; i < b.N; i++ {
		t.Observe(packet.NodeID(i%64), 1+i%10, uint32(i/64), sim.Time(i)*1e-3)
	}
}
