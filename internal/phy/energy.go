package phy

import "routeless/internal/sim"

// Power is the draw, in watts, of each transceiver state. Defaults
// follow the WaveLAN-class figures used throughout the sensor-network
// literature the paper builds on.
type Power struct {
	Tx    float64
	Rx    float64 // also the cost of decoding a frame
	Idle  float64 // listening, nothing decodable on air
	Sleep float64
	Off   float64
}

// DefaultPower returns typical WaveLAN-class draws.
func DefaultPower() Power {
	return Power{Tx: 0.660, Rx: 0.395, Idle: 0.035, Sleep: 30e-6, Off: 0}
}

func (p Power) draw(s State) float64 {
	switch s {
	case StateTx:
		return p.Tx
	case StateRx:
		return p.Rx
	case StateIdle:
		return p.Idle
	case StateSleep:
		return p.Sleep
	default:
		return p.Off
	}
}

// Energy integrates a radio's consumption over its state trajectory.
// Routeless Routing's headline claim that "any node, even if it is on
// the route, can freely switch to a sleep mode to save energy" (§4.2)
// is quantified with these meters.
type Energy struct {
	// power points at a draw profile shared across meters (the Channel
	// keeps one copy for its whole energies arena — an inline Power per
	// node is 40 identical bytes of mega-scale arena weight).
	power   *Power
	last    sim.Time
	state   State
	joules  float64
	byState [5]float64
}

// NewEnergy returns a meter starting at t=0 in the idle state. The
// profile is retained, not copied; callers must not mutate it.
func NewEnergy(p *Power) *Energy {
	return &Energy{power: p, state: StateIdle}
}

// Transition charges the elapsed interval at the old state's draw and
// switches to the new state.
func (e *Energy) Transition(now sim.Time, from, to State) {
	e.accumulate(now)
	e.state = to
}

func (e *Energy) accumulate(now sim.Time) {
	dt := float64(now - e.last)
	if dt > 0 {
		j := e.power.draw(e.state) * dt
		e.joules += j
		e.byState[e.state] += j
	}
	e.last = now
}

// Total returns joules consumed up to time now.
func (e *Energy) Total(now sim.Time) float64 {
	e.accumulate(now)
	return e.joules
}

// InState returns joules consumed in a particular state up to now.
func (e *Energy) InState(now sim.Time, s State) float64 {
	e.accumulate(now)
	return e.byState[s]
}
