package experiments

import (
	"fmt"
	"math"
	"runtime"

	"routeless/internal/flood"
	"routeless/internal/geo"
	"routeless/internal/metrics"
	"routeless/internal/node"
	"routeless/internal/rng"
	"routeless/internal/sim"
	"routeless/internal/stats"
	"routeless/internal/sweep"
	"routeless/internal/traffic"
)

// MegaConfig is the million-node arena study: SSAF flooding on arenas
// grown at fixed Figure-1 density (100 nodes/km²), the x-axis the node
// count on a log scale. It is the scale proof for the O(active) data
// plane — auto-sized PDES tiling, bounded link caches, compact per-node
// RNG — and reports the two quantities the paper's mechanisms promise
// to keep flat as N grows: delivery ratio and the per-hop local
// election latency (mean end-to-end delay divided by mean hop count,
// i.e. how long each hop's SSAF election took).
type MegaConfig struct {
	Ns      []int   // x-axis node counts; default {1e3, 1e4, 1e5}
	Density float64 // nodes per km²; default 100 (Figure 1's density)
	Range   float64 // calibrated transmission range; default 250
	Flows   int     // source→destination pairs, ONE packet each; default 4
	// Duration is the traffic+crossing window in seconds; 0 derives it
	// per arena from the diagonal hop count so the last flood can cross
	// before the drain starts.
	Duration     float64
	Seeds        []int64  // replications; default {1}
	Workers      int      `json:"-"` // sweep parallelism; default GOMAXPROCS
	Tiles        int      `json:"-"` // PDES tiles per run; default node.AutoTiles
	TileWorkers  int      `json:"-"` // PDES worker bound; default GOMAXPROCS
	LinkCacheCap int      `json:"-"` // per-tile link-cache residency bound; default 4096
	Lambda       sim.Time // SSAF λ; default 10 ms
	DataSize     int      // flooded payload bytes; default 64

	// Journal, when non-nil, receives one Record per run plus nothing
	// else; bytes are deterministic for a fixed config at any worker,
	// tile, or link-cache setting.
	Journal *metrics.Journal `json:"-"`

	// MemProbe, when non-nil, receives each run's arena memory cost:
	// the post-GC heap bytes retained by building the network and
	// installing the protocol stack, before any traffic is scheduled.
	// That is the per-node state the SoA arena layout controls — link
	// caches, the event pool, and floating garbage show up in a
	// footprint measurement (simbench's peak heap), not here. The
	// probe runs two stop-the-world GCs per run; use Workers=1 so no
	// concurrent run's allocations leak into the window.
	MemProbe func(n int, retainedBytes uint64) `json:"-"`
}

func (c MegaConfig) withDefaults() MegaConfig {
	if len(c.Ns) == 0 {
		c.Ns = []int{1_000, 10_000, 100_000}
	}
	if c.Density == 0 {
		c.Density = 100
	}
	if c.Range == 0 {
		c.Range = 250
	}
	if c.Flows == 0 {
		c.Flows = 4
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1}
	}
	if c.Tiles == 0 {
		c.Tiles = node.AutoTiles
	}
	if c.LinkCacheCap == 0 {
		c.LinkCacheCap = 4096
	}
	if c.Lambda == 0 {
		c.Lambda = 10e-3
	}
	if c.DataSize == 0 {
		c.DataSize = 64
	}
	return c
}

// megaSide returns the square arena side in meters for n nodes at the
// configured density (nodes per km²).
func megaSide(n int, density float64) float64 {
	return math.Sqrt(float64(n) / density * 1e6)
}

// megaDuration picks the traffic window: every flow has started, and
// the last flood has had 2.5× the nominal diagonal crossing time (hops
// at the calibrated range, λ plus ~2 ms of airtime/backoff per hop) to
// reach the far corner.
func megaDuration(cfg MegaConfig, side float64) float64 {
	if cfg.Duration > 0 {
		return cfg.Duration
	}
	hops := side * math.Sqrt2 / cfg.Range
	return megaLastStart(cfg.Flows) + 3 + 2.5*hops*(float64(cfg.Lambda)+0.002)
}

// megaLastStart is when the final staggered flow fires its one packet.
func megaLastStart(flows int) float64 { return 0.5 + float64(flows-1) }

// MegaRow is one x-axis point: the aggregate paper-unit metrics plus
// the derived per-hop election latency (one sample per seed).
type MegaRow struct {
	N        int
	SSAF     Agg
	Election stats.Welford // Delay.Mean()/Hops.Mean() per run, seconds
}

// RunMega sweeps the node counts across seeds through the sweep engine.
// Every run uses compact per-node RNG streams (the study's point is the
// O(active) memory plane), so its draws are not comparable to fig1's —
// but are themselves deterministic and pinned by the journal golden.
func RunMega(cfg MegaConfig) []MegaRow {
	cfg = cfg.withDefaults()
	cells := sweep.Cells("fig_mega", len(cfg.Ns), cfg.Seeds)
	results := sweep.Run(cfg.Workers, cells, func(ctx *sweep.Context, i int, c sweep.Cell) runOut {
		return runMegaOnce(ctx, cfg, cfg.Ns[c.Point], c.Seed)
	})
	rows := make([]MegaRow, len(cfg.Ns))
	for i, n := range cfg.Ns {
		rows[i].N = n
	}
	for i, c := range cells {
		row := &rows[c.Point]
		m := results[i].RunMetrics
		row.SSAF.Add(m)
		if m.Hops > 0 {
			row.Election.Add(m.Delay / m.Hops)
		}
	}
	if cfg.Journal != nil {
		for i, c := range cells {
			_ = cfg.Journal.Write(metrics.Record{
				Experiment: "fig_mega",
				Label:      fmt.Sprintf("ssaf n=%d", cfg.Ns[c.Point]),
				Seed:       c.Seed,
				Config:     cfg,
				Metrics:    results[i].snap,
			})
		}
	}
	return rows
}

func runMegaOnce(ctx *sweep.Context, cfg MegaConfig, n int, seed int64) runOut {
	var baseline uint64
	if cfg.MemProbe != nil {
		baseline = retainedHeap()
	}
	side := megaSide(n, cfg.Density)
	nw := node.New(node.Config{
		N:     n,
		Rect:  geo.NewRect(side, side),
		Range: cfg.Range,
		Seed:  seed,
		// No EnsureConnected: the connectivity check is O(N·deg) per
		// placement draw, and at Figure-1 density a giant component
		// spans the arena anyway — stragglers just dent the delivery
		// ratio deterministically.
		Runtime:      ctx.Runtime(),
		Tiles:        cfg.Tiles,
		TileWorkers:  cfg.TileWorkers,
		LinkCacheCap: cfg.LinkCacheCap,
		CompactRNG:   true,
	})
	minDBm, maxDBm := ssafSpan(cfg.Range)
	fcfg := flood.SSAFConfig(cfg.Lambda, minDBm, maxDBm)
	// The default TTL of 32 suits paper-scale arenas; a mega arena's
	// diagonal is hundreds of hops (SSAF's effective hop progress is
	// roughly half the calibrated range), so the brake scales with the
	// geometry instead of silently amputating the flood mid-arena.
	fcfg.TTL = int(4*side*math.Sqrt2/cfg.Range) + 16
	// Aggregate the flood.* series: per-node registration would cost six
	// registry entries per node and an O(N) snapshot; the aggregate is
	// bit-identical and O(1).
	floodArena := make([]flood.Flooding, n)
	floods := make([]*flood.Flooding, 0, n)
	nw.InstallAggregated(func(n *node.Node) node.Protocol {
		f := &floodArena[len(floods)]
		flood.Init(f, &fcfg)
		floods = append(floods, f)
		return f
	}, func(reg *metrics.Registry) { flood.RegisterAggregate(reg, floods) })
	if cfg.MemProbe != nil {
		cfg.MemProbe(n, retainedHeap()-baseline)
	}

	var meter stats.Meter
	tap := NewAppTap(nw, &meter)
	dur := megaDuration(cfg, side)
	pairs := traffic.RandomPairs(rng.New(seed, rng.StreamTraffic), n, cfg.Flows)
	cbrs := make([]*traffic.CBR, len(pairs))
	for i, p := range pairs {
		// One packet per flow: the interval outlasts the whole run, and
		// the 1 s stagger keeps floods from colliding at birth.
		cbrs[i] = traffic.NewCBR(nw.Nodes[p.Src], p.Dst, sim.Time(dur)+3*drainTime, cfg.DataSize)
		tap.Watch(cbrs[i])
		cbrs[i].StartAt(sim.Time(0.5 + float64(i)))
	}
	nw.Run(sim.Time(dur))
	for _, c := range cbrs {
		c.Stop()
	}
	nw.Run(sim.Time(dur) + drainTime)
	return runOut{collect(nw, tap), snapshotIf(nw, cfg.Journal != nil)}
}

// retainedHeap forces a collection and returns the live heap bytes —
// the MemProbe measurement primitive.
func retainedHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// MegaTable renders the study: delivery and election latency against N.
func MegaTable(rows []MegaRow) *stats.Table {
	t := stats.NewTable(
		"Figure M — million-node arena: SSAF flooding at Figure-1 density (100 nodes/km²)",
		"nodes", "delivery", "election_latency_s", "delay_s", "hops", "mac_packets",
	)
	for _, r := range rows {
		t.AddRow(r.N,
			r.SSAF.Delivery.Mean(), r.Election.Mean(),
			r.SSAF.Delay.Mean(), r.SSAF.Hops.Mean(), r.SSAF.MACPackets.Mean(),
		)
	}
	return t
}
