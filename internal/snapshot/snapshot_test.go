package snapshot_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"routeless/internal/metrics"
	"routeless/internal/scenario"
	"routeless/internal/sim"
	"routeless/internal/snapshot"
)

// fig1Scenario mirrors the fig1_tiny golden configuration: 30 nodes on
// a 565 m square at 250 m range, 8 random flows at 2 s intervals, 5 s
// of traffic — the same shape the journal CI gate runs.
func fig1Scenario(proto string, tiles int) scenario.Scenario {
	return scenario.Scenario{
		Seed: 1, N: 30, Width: 565, Height: 565, Range: 250,
		Placement: scenario.PlaceUniform, Connected: true,
		Tiles:    tiles,
		Protocol: proto,
		Flows: []scenario.Flow{
			{Src: 3, Dst: 17}, {Src: 21, Dst: 4}, {Src: 9, Dst: 28},
			{Src: 14, Dst: 0}, {Src: 26, Dst: 11}, {Src: 7, Dst: 19},
			{Src: 2, Dst: 23}, {Src: 29, Dst: 8},
		},
		Interval: 2, DataSize: 512, Duration: 5,
		JournalEvery: 1,
	}
}

// churnScenario mirrors the churn_tiny golden configuration: the same
// terrain under a three-spec fault plan (crash duty cycles sparing the
// traffic endpoints, periodic link degradation, a roaming jammer) with
// bidirectional flows.
func churnScenario(proto string, tiles int) scenario.Scenario {
	intensity := 0.15
	return scenario.Scenario{
		Seed: 1, N: 30, Width: 565, Height: 565, Range: 250,
		Placement: scenario.PlaceUniform, Connected: true,
		Tiles:    tiles,
		Protocol: proto,
		Flows: []scenario.Flow{
			{Src: 0, Dst: 15}, {Src: 15, Dst: 0},
			{Src: 1, Dst: 16}, {Src: 16, Dst: 1},
			{Src: 2, Dst: 17}, {Src: 17, Dst: 2},
		},
		Interval: 2, DataSize: 512, Duration: 5,
		JournalEvery: 1,
		Faults: []scenario.FaultSpec{
			{Kind: "crash", OffFraction: intensity,
				Exclude: []int{0, 1, 2, 15, 16, 17}},
			{Kind: "degrade", OffsetDB: -25, Period: 0.05 / intensity},
			{Kind: "jam", TxPowerDBm: 24.5, Period: 0.05 / intensity},
		},
	}
}

// runFull runs sc uninterrupted under a journal and returns the journal
// bytes and the final metrics snapshot JSON.
func runFull(t *testing.T, sc scenario.Scenario) (journal, snap []byte) {
	t.Helper()
	run, err := scenario.Build(sc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	run.SetJournal(metrics.NewJournal(&buf))
	if _, err := run.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes(), finalSnap(t, run)
}

func finalSnap(t *testing.T, run *scenario.Run) []byte {
	t.Helper()
	b, err := json.Marshal(run.Network().Metrics.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return b
}

// saveAt builds sc, journals it, advances to time at, and returns the
// snapshot document plus the journal prefix written so far.
func saveAt(t *testing.T, sc scenario.Scenario, at float64) (doc, prefix []byte) {
	t.Helper()
	run, err := scenario.Build(sc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var jbuf bytes.Buffer
	run.SetJournal(metrics.NewJournal(&jbuf))
	if err := run.AdvanceTo(sim.Time(at)); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	var sbuf bytes.Buffer
	if err := snapshot.Save(&sbuf, run); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return sbuf.Bytes(), jbuf.Bytes()
}

// resume restores a snapshot document, attaches a fresh journal, and
// finishes the run, returning the suffix journal bytes and final
// metrics snapshot.
func resume(t *testing.T, doc []byte) (suffix, snap []byte) {
	t.Helper()
	run, err := snapshot.Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var jbuf bytes.Buffer
	run.SetJournal(metrics.NewJournal(&jbuf))
	if _, err := run.Finish(); err != nil {
		t.Fatalf("restored Finish: %v", err)
	}
	return jbuf.Bytes(), finalSnap(t, run)
}

// TestRoundTripOracle is the bitwise checkpoint contract: for every
// golden-journal-shaped scenario at every tile count the journal gates
// run, "run 2T" must equal "run T, snapshot, restore, run T" — journal
// bytes and final metric snapshot both.
func TestRoundTripOracle(t *testing.T) {
	cases := []struct {
		name string
		sc   func(string, int) scenario.Scenario
		pros []string
	}{
		{"fig1", fig1Scenario, []string{scenario.ProtoCounter1, scenario.ProtoSSAF}},
		{"churn", churnScenario, []string{scenario.ProtoRouteless, scenario.ProtoAODV, scenario.ProtoGradient}},
	}
	for _, tc := range cases {
		for _, proto := range tc.pros {
			for _, tiles := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("%s/%s/tiles=%d", tc.name, proto, tiles), func(t *testing.T) {
					t.Parallel()
					sc := tc.sc(proto, tiles)
					fullJournal, fullSnap := runFull(t, sc)
					doc, prefix := saveAt(t, sc, (sc.Duration+5)/2)
					suffix, restoredSnap := resume(t, doc)

					spliced := append(append([]byte(nil), prefix...), suffix...)
					if !bytes.Equal(fullJournal, spliced) {
						t.Errorf("journal bytes diverge: full %d bytes, spliced %d bytes",
							len(fullJournal), len(spliced))
					}
					if !bytes.Equal(fullSnap, restoredSnap) {
						t.Errorf("final metrics diverge: full %d bytes, restored %d bytes",
							len(fullSnap), len(restoredSnap))
					}
				})
			}
		}
	}
}

// TestSnapshotAtEveryEpoch snapshots a fig1-shaped run at every journal
// epoch boundary and checks the contract at each: no boundary may be
// special-cased (the traffic stop and the final drain are both inside
// the swept range).
func TestSnapshotAtEveryEpoch(t *testing.T) {
	sc := fig1Scenario(scenario.ProtoSSAF, 1)
	fullJournal, fullSnap := runFull(t, sc)
	end := sc.Duration + 5 // drain window
	for at := sc.JournalEvery; at < end; at += sc.JournalEvery {
		at := at
		t.Run(fmt.Sprintf("t=%g", at), func(t *testing.T) {
			t.Parallel()
			doc, prefix := saveAt(t, sc, at)
			suffix, restoredSnap := resume(t, doc)
			spliced := append(append([]byte(nil), prefix...), suffix...)
			if !bytes.Equal(fullJournal, spliced) {
				t.Errorf("journal bytes diverge at t=%g", at)
			}
			if !bytes.Equal(fullSnap, restoredSnap) {
				t.Errorf("final metrics diverge at t=%g", at)
			}
		})
	}
}

// TestGoldenJournalLinkage ties the scenario path to the committed
// golden journals indirectly: the fig1-shaped scenario's metric
// snapshot must be identical between two independent builds — the
// determinism base the journal gates stand on.
func TestGoldenJournalLinkage(t *testing.T) {
	sc := fig1Scenario(scenario.ProtoCounter1, 1)
	_, a := runFull(t, sc)
	_, b := runFull(t, sc)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed scenario runs diverge (%d vs %d bytes)", len(a), len(b))
	}
}

// TestSaveRejectsFinishedRun: a folded run cannot be checkpointed.
func TestSaveRejectsFinishedRun(t *testing.T) {
	run, err := scenario.Build(fig1Scenario(scenario.ProtoCounter1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, run); err == nil {
		t.Fatal("Save accepted a finished run")
	}
}

// TestTruncation cuts a valid document at every byte boundary and
// demands a typed error, never a panic and never success.
func TestTruncation(t *testing.T) {
	doc, _ := saveAt(t, fig1Scenario(scenario.ProtoCounter1, 1), 5)
	for cut := 0; cut < len(doc); cut++ {
		if _, err := snapshot.Read(bytes.NewReader(doc[:cut])); err == nil {
			t.Fatalf("cut at %d/%d bytes: Read succeeded", cut, len(doc))
		} else if !errors.Is(err, snapshot.ErrTruncated) && !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("cut at %d/%d bytes: untyped error %v", cut, len(doc), err)
		}
	}
}

// TestCorruption flips one bit in each region of the document and
// demands a typed refusal: ErrCorrupt from the CRC (or framing),
// ErrVersion when the flip lands in the version word, ErrTruncated when
// it inflates the length field past the available bytes.
func TestCorruption(t *testing.T) {
	doc, _ := saveAt(t, fig1Scenario(scenario.ProtoCounter1, 1), 5)
	for _, pos := range []int{1, 9, 13, len(doc) / 2, len(doc) - 30, len(doc) - 2} {
		mut := append([]byte(nil), doc...)
		mut[pos] ^= 0x10
		if _, err := snapshot.Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at %d: Read succeeded", pos)
		} else if !errors.Is(err, snapshot.ErrCorrupt) && !errors.Is(err, snapshot.ErrVersion) &&
			!errors.Is(err, snapshot.ErrTruncated) {
			t.Fatalf("bit flip at %d: untyped error %v", pos, err)
		}
	}
}

// TestVersionMismatch bumps the version field (fixing the CRC) and
// demands ErrVersion.
func TestVersionMismatch(t *testing.T) {
	doc, _ := saveAt(t, fig1Scenario(scenario.ProtoCounter1, 1), 5)
	mut := append([]byte(nil), doc...)
	mut[8] = 99 // version lives right after the 8-byte magic
	if _, err := snapshot.Read(bytes.NewReader(mut)); err == nil {
		t.Fatal("Read accepted a future version")
	} else if !errors.Is(err, snapshot.ErrVersion) && !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("untyped error: %v", err)
	}
}

// TestStateMismatch tampers with a digest word and re-fixes the CRC:
// the restore must replay cleanly and then refuse, naming the
// component.
func TestStateMismatch(t *testing.T) {
	doc, _ := saveAt(t, fig1Scenario(scenario.ProtoCounter1, 1), 5)
	d, err := snapshot.Read(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	d.Digest.State ^= 1
	if _, err := d.Restore(scenario.BuildOptions{}); err == nil {
		t.Fatal("Restore accepted a tampered state digest")
	} else if !errors.Is(err, snapshot.ErrStateMismatch) {
		t.Fatalf("untyped error: %v", err)
	}
}

// TestReadRoundTrip checks the document codec in isolation.
func TestReadRoundTrip(t *testing.T) {
	sc := churnScenario(scenario.ProtoRouteless, 4)
	doc, _ := saveAt(t, sc, 5)
	d, err := snapshot.Read(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if d.Scenario.Protocol != sc.Protocol || d.Scenario.Tiles != sc.Tiles {
		t.Fatalf("decoded scenario mismatch: %+v", d.Scenario)
	}
	if float64(d.T) != (sc.Duration+5)/2 {
		t.Fatalf("decoded pause time %v", d.T)
	}
}
